//! One memory channel: the shared data bus plus its ranks and banks.
//!
//! The channel is where DRAM DIMM bursts and NVDIMM block transfers meet:
//! both occupy the same data bus (the paper's Fig. 1), so each kind of
//! traffic delays the other. Refresh windows periodically steal the bus too.

use crate::bank::Bank;
use crate::config::DramConfig;
use nvhsm_sim::SimTime;

/// Completion report of one bus occupation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusGrant {
    /// When the data burst started on the bus.
    pub start: SimTime,
    /// When the data burst finished (request completion).
    pub done: SimTime,
}

/// A single memory channel with `ranks × banks` banks and one data bus.
#[derive(Debug, Clone)]
pub struct Channel {
    cfg: DramConfig,
    banks: Vec<Bank>,
    bus_free: SimTime,
    busy_ns: u64,
    dram_requests: u64,
    nvdimm_bursts: u64,
}

impl Channel {
    /// Creates an idle channel.
    pub fn new(cfg: &DramConfig) -> Self {
        Channel {
            cfg: cfg.clone(),
            banks: (0..cfg.ranks * cfg.banks).map(|_| Bank::new()).collect(),
            bus_free: SimTime::ZERO,
            busy_ns: 0,
            dram_requests: 0,
            nvdimm_bursts: 0,
        }
    }

    fn bank_index(&self, rank: usize, bank: usize) -> usize {
        rank * self.cfg.banks + bank
    }

    /// Pushes `t` past any refresh window it falls into. Refresh commands
    /// fire every `refresh_interval` and block the channel for
    /// `refresh_row_time`.
    fn after_refresh(&self, t: SimTime) -> SimTime {
        let trefi = self.cfg.refresh_interval().as_ns();
        if trefi == 0 {
            return t;
        }
        let trfc = self.cfg.refresh_row_time.as_ns();
        let offset = t.as_ns() % trefi;
        if offset < trfc {
            SimTime::from_ns(t.as_ns() - offset + trfc)
        } else {
            t
        }
    }

    /// Performs one DRAM line access (read or write; timing symmetric in
    /// this model) on `(rank, bank, row)` arriving at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `rank`/`bank` are out of range.
    pub fn access(&mut self, rank: usize, bank: usize, row: u64, at: SimTime) -> BusGrant {
        let idx = self.bank_index(rank, bank);
        assert!(idx < self.banks.len(), "rank/bank out of range");
        let (_, cmd_latency, issue) = self.banks[idx].prepare_access(row, at, &self.cfg);
        let burst = self.cfg.burst_time();
        let earliest_data = issue + cmd_latency;
        let start = self.after_refresh(earliest_data.max(self.bus_free));
        let done = start + burst;
        self.bus_free = done;
        self.busy_ns += burst.as_ns();
        self.dram_requests += 1;
        BusGrant { start, done }
    }

    /// Transfers one NVDIMM burst (64 B slice of a block I/O) arriving at
    /// `at`. NVDIMM bursts bypass bank timing (the NVDIMM has its own
    /// on-DIMM controller and synchronization buffer) but contend for the
    /// shared data bus exactly like DRAM bursts.
    pub fn nvdimm_burst(&mut self, at: SimTime) -> BusGrant {
        let burst = self.cfg.burst_time();
        let start = self.after_refresh(at.max(self.bus_free));
        let done = start + burst;
        self.bus_free = done;
        self.busy_ns += burst.as_ns();
        self.nvdimm_bursts += 1;
        BusGrant { start, done }
    }

    /// Earliest time the data bus is free.
    pub fn bus_free_at(&self) -> SimTime {
        self.bus_free
    }

    /// Total nanoseconds the data bus has been occupied.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Bus utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            0.0
        } else {
            self.busy_ns as f64 / now.as_ns() as f64
        }
    }

    /// DRAM requests served.
    pub fn dram_requests(&self) -> u64 {
        self.dram_requests
    }

    /// NVDIMM bursts served.
    pub fn nvdimm_bursts(&self) -> u64 {
        self.nvdimm_bursts
    }

    /// Aggregate row-buffer hit statistics across all banks.
    pub fn row_hit_rate(&self) -> f64 {
        let hits: u64 = self.banks.iter().map(Bank::hits).sum();
        let misses: u64 = self.banks.iter().map(Bank::misses).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan() -> Channel {
        Channel::new(&DramConfig::ddr3_1600())
    }

    #[test]
    fn accesses_serialize_on_the_bus() {
        let mut c = chan();
        // Two simultaneous accesses to different banks still share the bus.
        let g0 = c.access(0, 0, 0, SimTime::ZERO);
        let g1 = c.access(0, 1, 0, SimTime::ZERO);
        assert!(g1.start >= g0.done);
    }

    #[test]
    fn nvdimm_bursts_queue_behind_dram() {
        let mut c = chan();
        let g0 = c.access(0, 0, 0, SimTime::ZERO);
        let g1 = c.nvdimm_burst(SimTime::ZERO);
        assert!(g1.start >= g0.done);
        assert_eq!(c.nvdimm_bursts(), 1);
    }

    #[test]
    fn dram_queues_behind_nvdimm_too() {
        let mut c = chan();
        let g0 = c.nvdimm_burst(SimTime::ZERO);
        let g1 = c.access(0, 0, 0, SimTime::ZERO);
        assert!(g1.start >= g0.done);
    }

    #[test]
    fn idle_channel_access_latency_reasonable() {
        let mut c = chan();
        // t = 3000 ns is well clear of the 110 ns refresh window that opens
        // every 7812 ns.
        let t0 = SimTime::from_ns(3_000);
        let g = c.access(0, 0, 0, t0);
        // Closed-row access: act_to_rw (14 ns) + burst (5 ns) ≈ 19 ns.
        let latency = g.done - t0;
        assert!(latency.as_ns() >= 15 && latency.as_ns() <= 30, "{latency}");
    }

    #[test]
    fn refresh_window_blocks_start() {
        let c = chan();
        // t=0 is the start of a refresh window (offset 0 < 110 ns).
        let pushed = c.after_refresh(SimTime::from_ns(50));
        assert_eq!(pushed, SimTime::from_ns(110));
        // Outside the window nothing changes.
        let t = SimTime::from_ns(500);
        assert_eq!(c.after_refresh(t), t);
    }

    #[test]
    fn utilization_tracks_busy_time() {
        let mut c = chan();
        for _ in 0..100 {
            c.nvdimm_burst(SimTime::ZERO);
        }
        let now = c.bus_free_at();
        let u = c.utilization(now);
        // The bus was essentially saturated the whole run (modulo the first
        // refresh window it had to skip).
        assert!(u > 0.7, "utilization {u}");
    }

    #[test]
    fn row_hit_rate_counts() {
        let mut c = chan();
        c.access(0, 0, 1, SimTime::ZERO);
        c.access(0, 0, 1, SimTime::from_us(1));
        c.access(0, 0, 2, SimTime::from_us(2));
        assert!((c.row_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }
}
