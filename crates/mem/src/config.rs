//! DRAM and memory-channel configuration.
//!
//! Defaults reproduce Table 4 of the paper: DDR3-1600 chips, 4 memory
//! channels, 4 ranks of 8 banks each, 13.75 ns activate→read/write,
//! 18.75 ns read/write→precharge, 13.75 ns precharge, 64 ms refresh period
//! and 110 ns refresh per row.

use nvhsm_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Configuration of the DRAM system and its shared memory channels.
///
/// # Examples
///
/// ```
/// use nvhsm_mem::DramConfig;
/// let cfg = DramConfig::ddr3_1600();
/// assert_eq!(cfg.channels, 4);
/// // DDR3-1600 on a 64-bit channel moves a 64 B burst in 5 ns (12.8 GB/s).
/// assert_eq!(cfg.burst_time().as_ns(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of independent memory channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Row size in bytes (row-buffer granularity).
    pub row_bytes: u64,
    /// Cache-line / burst size in bytes transferred per DRAM request.
    pub line_bytes: u64,
    /// Channel bandwidth in bytes per second (data bus).
    pub bandwidth_bytes_per_sec: u64,
    /// tRCD: activate command to read/write command.
    pub act_to_rw: SimDuration,
    /// tRAS component: read/write command to precharge command.
    pub rw_to_pre: SimDuration,
    /// tRP: precharge duration.
    pub pre: SimDuration,
    /// Refresh period for the whole device (tREFW, 64 ms for DDR3).
    pub refresh_period: SimDuration,
    /// Time to refresh one row (per-row refresh slot).
    pub refresh_row_time: SimDuration,
    /// Rows refreshed per refresh interval burst (8192 rows per 64 ms for
    /// DDR3, i.e. one refresh command every tREFI = 7.8125 µs).
    pub refresh_rows: u64,
    /// Transaction-queue depth reserved for DRAM DIMM requests.
    pub dram_queue_depth: usize,
    /// Transaction-queue depth reserved for NVDIMM transfers.
    pub nvdimm_queue_depth: usize,
}

impl DramConfig {
    /// The paper's Table 4 configuration.
    pub fn ddr3_1600() -> Self {
        DramConfig {
            channels: 4,
            ranks: 4,
            banks: 8,
            row_bytes: 8 * 1024,
            line_bytes: 64,
            // DDR3-1600: 1600 MT/s * 8 B = 12.8 GB/s per channel.
            bandwidth_bytes_per_sec: 12_800_000_000,
            act_to_rw: SimDuration::from_ns_f64(13.75),
            rw_to_pre: SimDuration::from_ns_f64(18.75),
            pre: SimDuration::from_ns_f64(13.75),
            refresh_period: SimDuration::from_ms(64),
            refresh_row_time: SimDuration::from_ns(110),
            refresh_rows: 8192,
            dram_queue_depth: 128,
            nvdimm_queue_depth: 128,
        }
    }

    /// A single-channel configuration, convenient for focused contention
    /// tests where cross-channel striping would blur the picture.
    pub fn single_channel() -> Self {
        DramConfig {
            channels: 1,
            ..Self::ddr3_1600()
        }
    }

    /// Time the data bus is occupied by one `line_bytes` burst.
    pub fn burst_time(&self) -> SimDuration {
        SimDuration::from_ns_f64(self.line_bytes as f64 * 1e9 / self.bandwidth_bytes_per_sec as f64)
    }

    /// Interval between two refresh commands (tREFI): the refresh period
    /// divided over the rows needing refresh.
    pub fn refresh_interval(&self) -> SimDuration {
        SimDuration::from_ns(self.refresh_period.as_ns() / self.refresh_rows)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || self.ranks == 0 || self.banks == 0 {
            return Err("channels, ranks and banks must all be non-zero".into());
        }
        if !self.row_bytes.is_power_of_two() || !self.line_bytes.is_power_of_two() {
            return Err("row_bytes and line_bytes must be powers of two".into());
        }
        if self.line_bytes > self.row_bytes {
            return Err("line_bytes cannot exceed row_bytes".into());
        }
        if self.bandwidth_bytes_per_sec == 0 {
            return Err("bandwidth must be non-zero".into());
        }
        if self.refresh_rows == 0 {
            return Err("refresh_rows must be non-zero".into());
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr3_1600()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_defaults() {
        let cfg = DramConfig::ddr3_1600();
        assert_eq!(cfg.channels, 4);
        assert_eq!(cfg.ranks, 4);
        assert_eq!(cfg.banks, 8);
        assert_eq!(cfg.act_to_rw.as_ns(), 14); // 13.75 rounded
        assert_eq!(cfg.rw_to_pre.as_ns(), 19); // 18.75 rounded
        assert_eq!(cfg.refresh_period, SimDuration::from_ms(64));
        assert_eq!(cfg.refresh_row_time.as_ns(), 110);
        assert_eq!(cfg.dram_queue_depth, 128);
        assert_eq!(cfg.nvdimm_queue_depth, 128);
        cfg.validate().unwrap();
    }

    #[test]
    fn burst_time_matches_bandwidth() {
        let cfg = DramConfig::ddr3_1600();
        assert_eq!(cfg.burst_time().as_ns(), 5);
    }

    #[test]
    fn refresh_interval_is_trefi() {
        let cfg = DramConfig::ddr3_1600();
        // 64 ms / 8192 = 7.8125 us.
        assert_eq!(cfg.refresh_interval().as_ns(), 7_812);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = DramConfig::ddr3_1600();
        cfg.channels = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = DramConfig::ddr3_1600();
        cfg.row_bytes = 3000;
        assert!(cfg.validate().is_err());

        let mut cfg = DramConfig::ddr3_1600();
        cfg.line_bytes = cfg.row_bytes * 2;
        assert!(cfg.validate().is_err());

        let mut cfg = DramConfig::ddr3_1600();
        cfg.bandwidth_bytes_per_sec = 0;
        assert!(cfg.validate().is_err());
    }
}
