//! The memory controller: bounded transaction queues and command
//! scheduling over the shared channels.
//!
//! Table 4 configures 128-deep transaction queues for DRAM DIMM requests
//! and another 128 for NVDIMM transfers. This module adds the queueing and
//! scheduling layer on top of [`crate::DramSystem`]'s bank/bus timing:
//!
//! * **FCFS** — requests issue in arrival order (the baseline of Rixner et
//!   al.'s memory access scheduling, which the paper cites for its flash
//!   scheduling baseline too).
//! * **FR-FCFS** — row hits first, then oldest: the standard
//!   open-row-exploiting policy of real controllers.
//!
//! The scheduler is drained in arrival order per batch window; reordering
//! happens within the lookahead the queue depth provides.

use crate::address::AddressMapper;
use crate::channel::Channel;
use crate::config::DramConfig;
use crate::system::MemRequest;
use nvhsm_sim::{OnlineStats, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Command scheduling policy of the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// First-come first-served.
    Fcfs,
    /// First-ready (row hit) first-come first-served.
    FrFcfs,
}

/// A queued transaction.
#[derive(Debug, Clone, Copy)]
struct Transaction {
    req: MemRequest,
    arrival: SimTime,
}

/// The memory controller: per-channel bounded queues + scheduling.
///
/// # Examples
///
/// ```
/// use nvhsm_mem::controller::{MemController, SchedulingPolicy};
/// use nvhsm_mem::{DramConfig, MemOp, MemRequest};
/// use nvhsm_sim::SimTime;
///
/// let mut mc = MemController::new(DramConfig::ddr3_1600(), SchedulingPolicy::FrFcfs);
/// assert!(mc.submit(MemRequest::new(0, MemOp::Read), SimTime::ZERO));
/// let done = mc.drain(SimTime::from_us(1));
/// assert_eq!(done, 1);
/// ```
#[derive(Debug)]
pub struct MemController {
    cfg: DramConfig,
    policy: SchedulingPolicy,
    mapper: AddressMapper,
    channels: Vec<Channel>,
    queues: Vec<VecDeque<Transaction>>,
    /// Last row issued per (channel, rank, bank) — the open-row hint
    /// FR-FCFS uses without peeking into bank internals.
    open_rows: Vec<Option<u64>>,
    latency: OnlineStats,
    rejected: u64,
    served: u64,
}

impl MemController {
    /// Builds a controller.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DramConfig::validate`].
    pub fn new(cfg: DramConfig, policy: SchedulingPolicy) -> Self {
        let mapper = AddressMapper::new(&cfg);
        let channels = (0..cfg.channels).map(|_| Channel::new(&cfg)).collect();
        let queues = (0..cfg.channels).map(|_| VecDeque::new()).collect();
        let banks = cfg.channels * cfg.ranks * cfg.banks;
        MemController {
            cfg,
            policy,
            mapper,
            channels,
            queues,
            open_rows: vec![None; banks],
            latency: OnlineStats::new(),
            rejected: 0,
            served: 0,
        }
    }

    /// The scheduling policy.
    pub fn policy(&self) -> SchedulingPolicy {
        self.policy
    }

    /// Enqueues a request arriving at `arrival`. Returns `false` (and drops
    /// the request) when the channel's transaction queue is full — the
    /// Table 4 queue depth is a real admission limit.
    pub fn submit(&mut self, req: MemRequest, arrival: SimTime) -> bool {
        let loc = self.mapper.decode(req.addr);
        let queue = &mut self.queues[loc.channel];
        if queue.len() >= self.cfg.dram_queue_depth {
            self.rejected += 1;
            return false;
        }
        queue.push_back(Transaction { req, arrival });
        true
    }

    fn bank_index(&self, channel: usize, rank: usize, bank: usize) -> usize {
        (channel * self.cfg.ranks + rank) * self.cfg.banks + bank
    }

    /// Picks the next transaction index in `queue` for one channel.
    fn pick(&self, channel: usize, now: SimTime) -> Option<usize> {
        let queue = &self.queues[channel];
        let due = |t: &Transaction| t.arrival <= now;
        match self.policy {
            SchedulingPolicy::Fcfs => queue.iter().position(due),
            SchedulingPolicy::FrFcfs => {
                // First ready: oldest row hit; else oldest.
                let mut oldest: Option<usize> = None;
                for (i, t) in queue.iter().enumerate() {
                    if !due(t) {
                        continue;
                    }
                    let loc = self.mapper.decode(t.req.addr);
                    let bi = self.bank_index(loc.channel, loc.rank, loc.bank);
                    if self.open_rows[bi] == Some(loc.row) {
                        return Some(i);
                    }
                    if oldest.is_none() {
                        oldest = Some(i);
                    }
                }
                oldest
            }
        }
    }

    /// Issues queued transactions with arrival time ≤ `until`, in scheduling
    /// order; returns how many were served.
    pub fn drain(&mut self, until: SimTime) -> u64 {
        let mut served = 0;
        for channel in 0..self.cfg.channels {
            while let Some(i) = self.pick(channel, until) {
                let t = self.queues[channel].remove(i).expect("index valid");
                let loc = self.mapper.decode(t.req.addr);
                let grant = self.channels[channel].access(loc.rank, loc.bank, loc.row, t.arrival);
                let bi = self.bank_index(loc.channel, loc.rank, loc.bank);
                self.open_rows[bi] = Some(loc.row);
                self.latency
                    .add((grant.done.saturating_since(t.arrival)).as_ns() as f64);
                served += 1;
                self.served += 1;
                let _ = t.req.op;
            }
        }
        served
    }

    /// Mean end-to-end latency (queue + service), nanoseconds.
    pub fn mean_latency_ns(&self) -> f64 {
        self.latency.mean()
    }

    /// Transactions served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Transactions dropped at full queues.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Row-buffer hit rate across channels.
    pub fn row_hit_rate(&self) -> f64 {
        let sum: f64 = self.channels.iter().map(Channel::row_hit_rate).sum();
        sum / self.channels.len() as f64
    }

    /// Pending transactions across all queues.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::MemOp;
    use nvhsm_sim::{SimDuration, SimRng};

    fn rand_reqs(n: usize, locality: bool, seed: u64) -> Vec<(MemRequest, SimTime)> {
        let mut rng = SimRng::new(seed);
        let mut t = SimTime::ZERO;
        (0..n)
            .map(|i| {
                t += SimDuration::from_ns(50);
                let addr = if locality {
                    // Streams within rows: consecutive lines with occasional
                    // jumps.
                    (i as u64 / 32) * (1 << 20) + (i as u64 % 32) * 64
                } else {
                    rng.below(1 << 30)
                };
                (MemRequest::new(addr, MemOp::Read), t)
            })
            .collect()
    }

    #[test]
    fn serves_everything_submitted() {
        // Submit in queue-sized batches (draining between), like a real
        // issue loop.
        let mut mc = MemController::new(DramConfig::ddr3_1600(), SchedulingPolicy::Fcfs);
        let mut total = 0;
        for batch in rand_reqs(500, false, 1).chunks(128) {
            for &(req, at) in batch {
                assert!(mc.submit(req, at));
            }
            total += mc.drain(SimTime::from_ms(1));
        }
        assert_eq!(total, 500);
        assert_eq!(mc.pending(), 0);
        assert!(mc.mean_latency_ns() > 0.0);
    }

    #[test]
    fn queue_depth_is_enforced() {
        let mut cfg = DramConfig::single_channel();
        cfg.dram_queue_depth = 8;
        let mut mc = MemController::new(cfg, SchedulingPolicy::Fcfs);
        let mut admitted = 0;
        for (req, at) in rand_reqs(20, false, 2) {
            if mc.submit(req, at) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 8);
        assert_eq!(mc.rejected(), 12);
    }

    #[test]
    fn frfcfs_beats_fcfs_on_row_locality() {
        // Interleave two row streams on the same bank: FCFS ping-pongs
        // between rows (conflict every access), FR-FCFS batches row hits.
        let cfg = DramConfig::single_channel();
        let mut reqs = Vec::new();
        let mut t = SimTime::ZERO;
        let lines_per_row = cfg.row_bytes / cfg.line_bytes;
        let row_stride = lines_per_row * 64; // next row, same bank (single channel)
        let bank_stride = row_stride * cfg.banks as u64 * cfg.ranks as u64;
        for i in 0..64u64 {
            t += SimDuration::from_ns(10);
            // Alternate rows 0 and N on bank 0.
            let addr = (i % 2) * bank_stride + (i / 2) * 64;
            reqs.push((MemRequest::new(addr, MemOp::Read), t));
        }
        let run = |policy: SchedulingPolicy| -> (f64, f64) {
            let mut mc = MemController::new(DramConfig::single_channel(), policy);
            for &(req, at) in &reqs {
                assert!(mc.submit(req, at));
            }
            mc.drain(SimTime::from_ms(1));
            (mc.mean_latency_ns(), mc.row_hit_rate())
        };
        let (fcfs_lat, fcfs_hits) = run(SchedulingPolicy::Fcfs);
        let (fr_lat, fr_hits) = run(SchedulingPolicy::FrFcfs);
        assert!(
            fr_hits > fcfs_hits,
            "FR-FCFS row hits {fr_hits} !> FCFS {fcfs_hits}"
        );
        assert!(
            fr_lat < fcfs_lat,
            "FR-FCFS latency {fr_lat} !< FCFS {fcfs_lat}"
        );
    }

    #[test]
    fn sequential_traffic_hits_rows_under_both_policies() {
        for policy in [SchedulingPolicy::Fcfs, SchedulingPolicy::FrFcfs] {
            let mut mc = MemController::new(DramConfig::ddr3_1600(), policy);
            for (req, at) in rand_reqs(512, true, 3) {
                mc.submit(req, at);
            }
            mc.drain(SimTime::from_ms(1));
            assert!(
                mc.row_hit_rate() > 0.5,
                "{policy:?}: hit rate {}",
                mc.row_hit_rate()
            );
        }
    }
}
