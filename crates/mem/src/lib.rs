//! Bank-level DDR3 main-memory model with shared-channel bus contention.
//!
//! This crate plays the role DRAMSim2 plays in the paper's evaluation stack:
//! it models the memory channels that DRAM DIMMs *and* NVDIMMs share
//! (Fig. 1/2 of the paper), which is where the paper's central phenomenon —
//! bus contention throttling NVDIMM I/O — comes from.
//!
//! Two levels of fidelity are provided:
//!
//! * [`DramSystem`] — a bank-level model with the paper's Table 4 timings
//!   (DDR3-1600, 4 channels, 4 ranks × 8 banks, 13.75 ns activate→read/write,
//!   18.75 ns read/write→precharge, 13.75 ns precharge, 64 ms refresh period,
//!   110 ns per-row refresh). DRAM requests are 64 B bursts; NVDIMM block
//!   transfers occupy the same data bus in 64 B bursts and therefore queue
//!   behind DRAM traffic.
//! * [`analytic::AnalyticBus`] — a utilization→contention-delay curve
//!   *calibrated against* the detailed model (see [`analytic::calibrate`]),
//!   used by device-level simulations that span minutes of virtual time
//!   where per-request DRAM simulation would be needlessly slow. The
//!   calibration is validated by tests in this crate.
//!
//! # Examples
//!
//! ```
//! use nvhsm_mem::{DramConfig, DramSystem, MemOp, MemRequest};
//! use nvhsm_sim::SimTime;
//!
//! let mut dram = DramSystem::new(DramConfig::ddr3_1600());
//! let done = dram.access(MemRequest::new(0x1000, MemOp::Read), SimTime::ZERO);
//! assert!(done > SimTime::ZERO);
//! ```

pub mod address;
pub mod analytic;
pub mod bank;
pub mod channel;
pub mod config;
pub mod controller;
pub mod system;
pub mod traffic;

pub use analytic::{AnalyticBus, BusModel, CalibrationCurve};
pub use config::DramConfig;
pub use controller::{MemController, SchedulingPolicy};
pub use system::{DramSystem, MemOp, MemRequest, TransferOutcome};
pub use traffic::PoissonTraffic;
