//! The full DRAM system: channels behind an address mapper, serving DRAM
//! line requests and NVDIMM block transfers on shared channels.

use crate::address::AddressMapper;
use crate::channel::Channel;
use crate::config::DramConfig;
use nvhsm_sim::{OnlineStats, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Kind of a DRAM line access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOp {
    /// Read one cache line.
    Read,
    /// Write one cache line.
    Write,
}

/// One DRAM line request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Physical byte address.
    pub addr: u64,
    /// Read or write.
    pub op: MemOp,
}

impl MemRequest {
    /// Creates a request.
    pub fn new(addr: u64, op: MemOp) -> Self {
        MemRequest { addr, op }
    }
}

/// Result of an NVDIMM block transfer over a memory channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferOutcome {
    /// When the first burst hit the bus.
    pub start: SimTime,
    /// When the last burst left the bus.
    pub done: SimTime,
    /// Pure bus time the transfer would take on an idle channel.
    pub ideal: SimDuration,
}

impl TransferOutcome {
    /// Time lost to bus contention (and refresh) relative to an idle channel.
    pub fn stall(&self, submitted: SimTime) -> SimDuration {
        (self.done - submitted).saturating_sub(self.ideal)
    }
}

/// Bank-level DRAM + shared channel system.
///
/// Requests must be submitted in non-decreasing time order (activity-scan
/// simulation); interleaving DRAM traffic and NVDIMM transfers in time order
/// is exactly how the bus contention the paper studies arises.
///
/// # Examples
///
/// ```
/// use nvhsm_mem::{DramConfig, DramSystem, MemOp, MemRequest};
/// use nvhsm_sim::SimTime;
///
/// let mut sys = DramSystem::new(DramConfig::single_channel());
/// // Saturate the bus with DRAM traffic, then watch an NVDIMM page stall.
/// for i in 0..64 {
///     sys.access(MemRequest::new(i * 64, MemOp::Read), SimTime::ZERO);
/// }
/// let out = sys.nvdimm_transfer(0, 4096, SimTime::ZERO);
/// assert!(out.stall(SimTime::ZERO).as_ns() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct DramSystem {
    cfg: DramConfig,
    mapper: AddressMapper,
    channels: Vec<Channel>,
    dram_latency: OnlineStats,
    transfer_latency: OnlineStats,
}

impl DramSystem {
    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DramConfig::validate`].
    pub fn new(cfg: DramConfig) -> Self {
        let mapper = AddressMapper::new(&cfg);
        let channels = (0..cfg.channels).map(|_| Channel::new(&cfg)).collect();
        DramSystem {
            cfg,
            mapper,
            channels,
            dram_latency: OnlineStats::new(),
            transfer_latency: OnlineStats::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Serves one DRAM line request arriving at `now`; returns completion
    /// time.
    pub fn access(&mut self, req: MemRequest, now: SimTime) -> SimTime {
        let loc = self.mapper.decode(req.addr);
        let grant = self.channels[loc.channel].access(loc.rank, loc.bank, loc.row, now);
        self.dram_latency.add((grant.done - now).as_ns() as f64);
        grant.done
    }

    /// Transfers `bytes` of NVDIMM block I/O over `channel`, starting no
    /// earlier than `now`. The transfer is cut into line-sized bursts that
    /// contend with DRAM traffic individually.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range or `bytes` is zero.
    pub fn nvdimm_transfer(&mut self, channel: usize, bytes: u64, now: SimTime) -> TransferOutcome {
        assert!(channel < self.channels.len(), "channel out of range");
        assert!(bytes > 0, "zero-byte transfer");
        let bursts = bytes.div_ceil(self.cfg.line_bytes);
        let ch = &mut self.channels[channel];
        let mut start = None;
        let mut done = now;
        let mut cursor = now;
        for _ in 0..bursts {
            let grant = ch.nvdimm_burst(cursor);
            start.get_or_insert(grant.start);
            done = grant.done;
            cursor = grant.done;
        }
        let ideal = self.cfg.burst_time() * bursts;
        self.transfer_latency.add((done - now).as_ns() as f64);
        TransferOutcome {
            start: start.expect("at least one burst"),
            done,
            ideal,
        }
    }

    /// Bus utilization of `channel` over `[0, now]`.
    pub fn channel_utilization(&self, channel: usize, now: SimTime) -> f64 {
        self.channels[channel].utilization(now)
    }

    /// Mean DRAM request latency in nanoseconds.
    pub fn mean_dram_latency_ns(&self) -> f64 {
        self.dram_latency.mean()
    }

    /// Mean NVDIMM transfer latency in nanoseconds.
    pub fn mean_transfer_latency_ns(&self) -> f64 {
        self.transfer_latency.mean()
    }

    /// Number of DRAM requests served.
    pub fn dram_request_count(&self) -> u64 {
        self.dram_latency.count()
    }

    /// Per-channel row-buffer hit rate, averaged.
    pub fn row_hit_rate(&self) -> f64 {
        let sum: f64 = self.channels.iter().map(Channel::row_hit_rate).sum();
        sum / self.channels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_dram_access_is_fast() {
        let mut sys = DramSystem::new(DramConfig::ddr3_1600());
        let t0 = SimTime::from_us(1);
        let done = sys.access(MemRequest::new(4096, MemOp::Read), t0);
        let lat = done - t0;
        assert!(lat.as_ns() < 60, "idle latency {lat}");
    }

    #[test]
    fn transfer_ideal_time_matches_bandwidth() {
        let mut sys = DramSystem::new(DramConfig::single_channel());
        let out = sys.nvdimm_transfer(0, 4096, SimTime::from_us(1));
        // 4 KB at 12.8 GB/s = 320 ns = 64 bursts * 5 ns.
        assert_eq!(out.ideal.as_ns(), 320);
        // On an idle bus the realized time is close to ideal (refresh may
        // add one 110 ns window).
        assert!(out.stall(SimTime::from_us(1)).as_ns() <= 120);
    }

    #[test]
    fn contention_grows_with_dram_traffic() {
        // Fill the single channel with increasing DRAM request batches and
        // verify the NVDIMM transfer stall grows monotonically.
        let mut stalls = Vec::new();
        for batch in [0u64, 32, 128, 512] {
            let mut sys = DramSystem::new(DramConfig::single_channel());
            let now = SimTime::from_us(1);
            for i in 0..batch {
                sys.access(MemRequest::new(i * 64, MemOp::Read), now);
            }
            let out = sys.nvdimm_transfer(0, 4096, now);
            stalls.push(out.stall(now).as_ns());
        }
        assert!(
            stalls.windows(2).all(|w| w[0] <= w[1]),
            "stalls not monotone: {stalls:?}"
        );
        assert!(stalls[3] > stalls[0] + 1_000, "stalls: {stalls:?}");
    }

    #[test]
    fn transfers_delay_dram_requests() {
        let mut sys = DramSystem::new(DramConfig::single_channel());
        let now = SimTime::from_us(1);
        // A big NVDIMM transfer first...
        sys.nvdimm_transfer(0, 64 * 1024, now);
        // ...makes a subsequent DRAM access slow.
        let done = sys.access(MemRequest::new(0, MemOp::Read), now);
        assert!((done - now).as_ns() > 1_000);
    }

    #[test]
    fn sequential_addresses_hit_rows() {
        let mut sys = DramSystem::new(DramConfig::ddr3_1600());
        let mut t = SimTime::ZERO;
        for i in 0..1024u64 {
            t += SimDuration::from_ns(100);
            sys.access(MemRequest::new(i * 64, MemOp::Read), t);
        }
        assert!(sys.row_hit_rate() > 0.8, "hit rate {}", sys.row_hit_rate());
    }

    #[test]
    #[should_panic(expected = "zero-byte transfer")]
    fn zero_byte_transfer_rejected() {
        let mut sys = DramSystem::new(DramConfig::ddr3_1600());
        sys.nvdimm_transfer(0, 0, SimTime::ZERO);
    }

    #[test]
    fn stats_accumulate() {
        let mut sys = DramSystem::new(DramConfig::ddr3_1600());
        sys.access(MemRequest::new(0, MemOp::Write), SimTime::ZERO);
        sys.nvdimm_transfer(1, 4096, SimTime::ZERO);
        assert_eq!(sys.dram_request_count(), 1);
        assert!(sys.mean_dram_latency_ns() > 0.0);
        assert!(sys.mean_transfer_latency_ns() > 0.0);
    }
}
