//! Background DRAM traffic injection.
//!
//! SPEC-like memory-intensive applications are modeled as Poisson streams of
//! line requests with configurable locality. The injector produces requests
//! in time order so they can be interleaved with NVDIMM transfers in an
//! activity-scan simulation.

use crate::system::{MemOp, MemRequest};
use nvhsm_sim::{SimDuration, SimRng, SimTime};

/// A Poisson DRAM request stream.
///
/// # Examples
///
/// ```
/// use nvhsm_mem::PoissonTraffic;
/// use nvhsm_sim::{SimRng, SimTime};
///
/// let mut t = PoissonTraffic::new(1_000_000.0, 0.3, SimRng::new(1));
/// let (when, _req) = t.next_request();
/// assert!(when > SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonTraffic {
    /// Requests per second.
    rate: f64,
    /// Fraction of writes in the stream.
    write_ratio: f64,
    /// Probability that a request continues the current sequential run
    /// (drives row-buffer hit rate).
    sequential_prob: f64,
    rng: SimRng,
    clock: SimTime,
    cursor_addr: u64,
    footprint_lines: u64,
}

impl PoissonTraffic {
    /// Creates a stream with `rate` requests/second and the given write
    /// ratio, over a default 512 MiB footprint with 70 % sequential runs.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive and finite.
    pub fn new(rate: f64, write_ratio: f64, rng: SimRng) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "invalid traffic rate");
        PoissonTraffic {
            rate,
            write_ratio: write_ratio.clamp(0.0, 1.0),
            sequential_prob: 0.7,
            rng,
            clock: SimTime::ZERO,
            cursor_addr: 0,
            footprint_lines: 512 * 1024 * 1024 / 64,
        }
    }

    /// Overrides the sequential-run probability.
    pub fn with_sequential_prob(mut self, p: f64) -> Self {
        self.sequential_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Overrides the memory footprint in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is smaller than one line.
    pub fn with_footprint(mut self, bytes: u64) -> Self {
        assert!(bytes >= 64, "footprint below one line");
        self.footprint_lines = bytes / 64;
        self
    }

    /// Current request rate in requests per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Changes the request rate (e.g. between program phases).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive and finite.
    pub fn set_rate(&mut self, rate: f64) {
        assert!(rate > 0.0 && rate.is_finite(), "invalid traffic rate");
        self.rate = rate;
    }

    /// Draws the next request and its arrival time (strictly increasing).
    pub fn next_request(&mut self) -> (SimTime, MemRequest) {
        let gap_ns = self.rng.exponential(1e9 / self.rate).max(1.0);
        self.clock += SimDuration::from_ns_f64(gap_ns);
        if self.rng.chance(self.sequential_prob) {
            self.cursor_addr = (self.cursor_addr + 1) % self.footprint_lines;
        } else {
            self.cursor_addr = self.rng.below(self.footprint_lines);
        }
        let op = if self.rng.chance(self.write_ratio) {
            MemOp::Write
        } else {
            MemOp::Read
        };
        (self.clock, MemRequest::new(self.cursor_addr * 64, op))
    }

    /// Time of the most recently produced request.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Skips the stream's clock forward to `at` without emitting requests
    /// (used when a phase is compute-bound and memory-idle).
    pub fn fast_forward(&mut self, at: SimTime) {
        self.clock = self.clock.max(at);
    }
}

/// Converts a desired channel utilization into a request rate for one
/// channel, given line size and bandwidth.
///
/// `utilization` is the fraction of data-bus time occupied by DRAM bursts.
pub fn rate_for_utilization(utilization: f64, line_bytes: u64, bandwidth: u64) -> f64 {
    let burst_ns = line_bytes as f64 * 1e9 / bandwidth as f64;
    (utilization.clamp(0.0, 1.0) * 1e9 / burst_ns).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_times_increase() {
        let mut t = PoissonTraffic::new(1e7, 0.3, SimRng::new(3));
        let mut last = SimTime::ZERO;
        for _ in 0..1000 {
            let (when, _) = t.next_request();
            assert!(when > last);
            last = when;
        }
    }

    #[test]
    fn realized_rate_close_to_target() {
        let rate = 1e7;
        let mut t = PoissonTraffic::new(rate, 0.0, SimRng::new(5));
        let n = 100_000;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = t.next_request().0;
        }
        let realized = n as f64 / last.as_secs_f64();
        assert!((realized - rate).abs() / rate < 0.05, "realized {realized}");
    }

    #[test]
    fn write_ratio_respected() {
        let mut t = PoissonTraffic::new(1e6, 0.25, SimRng::new(7));
        let writes = (0..40_000)
            .filter(|_| matches!(t.next_request().1.op, MemOp::Write))
            .count();
        let frac = writes as f64 / 40_000.0;
        assert!((frac - 0.25).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn rate_for_utilization_round_trips() {
        // 50% utilization of a 12.8 GB/s channel with 64B lines:
        // burst = 5 ns, so rate = 0.5 / 5ns = 1e8 requests/s.
        let r = rate_for_utilization(0.5, 64, 12_800_000_000);
        assert!((r - 1e8).abs() / 1e8 < 1e-9, "rate {r}");
    }

    #[test]
    fn fast_forward_moves_clock() {
        let mut t = PoissonTraffic::new(1e6, 0.0, SimRng::new(9));
        t.fast_forward(SimTime::from_ms(5));
        let (when, _) = t.next_request();
        assert!(when > SimTime::from_ms(5));
    }

    #[test]
    fn sequential_prob_one_walks_linearly() {
        let mut t = PoissonTraffic::new(1e6, 0.0, SimRng::new(11)).with_sequential_prob(1.0);
        let a = t.next_request().1.addr;
        let b = t.next_request().1.addr;
        assert_eq!(b, a + 64);
    }
}
