//! Pesto's aggregation device model (the "other model" the paper's §4.4
//! compares against and rejects).
//!
//! Pesto characterizes a device by a single linear relationship between
//! latency and outstanding I/Os — the *LQ-slope*. The paper's argument for
//! the regression tree is that the aggregation model sees only OIOs while
//! the tree uses all six workload characteristics; the ablation tests here
//! quantify exactly that gap.

use crate::features::{Features, Sample};
use serde::{Deserialize, Serialize};

/// Latency = `intercept + slope · OIOs`, fitted by least squares on the
/// OIO dimension alone.
///
/// # Examples
///
/// ```
/// use nvhsm_model::aggregation::AggregationModel;
/// use nvhsm_model::{Features, Sample};
///
/// let samples: Vec<Sample> = (0..20)
///     .map(|i| Sample {
///         features: Features { oios: i as f64, ..Features::default() },
///         latency_us: 10.0 + 4.0 * i as f64,
///     })
///     .collect();
/// let m = AggregationModel::fit(&samples);
/// assert!((m.slope_us_per_oio() - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregationModel {
    intercept: f64,
    slope: f64,
}

impl AggregationModel {
    /// Fits the model.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn fit(samples: &[Sample]) -> Self {
        assert!(!samples.is_empty(), "cannot fit on an empty sample set");
        let n = samples.len() as f64;
        let mean_x = samples.iter().map(|s| s.features.oios).sum::<f64>() / n;
        let mean_y = samples.iter().map(|s| s.latency_us).sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for s in samples {
            let dx = s.features.oios - mean_x;
            sxx += dx * dx;
            sxy += dx * (s.latency_us - mean_y);
        }
        let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
        AggregationModel {
            intercept: mean_y - slope * mean_x,
            slope,
        }
    }

    /// Predicted latency for `features` (only `oios` is consulted).
    pub fn predict(&self, features: &Features) -> f64 {
        self.intercept + self.slope * features.oios
    }

    /// The fitted LQ slope, µs per outstanding I/O.
    pub fn slope_us_per_oio(&self) -> f64 {
        self.slope
    }

    /// The fitted intercept (latency at zero queue), µs.
    pub fn intercept_us(&self) -> f64 {
        self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;
    use crate::{Dataset, PerfModel};
    use nvhsm_sim::SimRng;

    fn multi_factor_samples(n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = SimRng::new(seed);
        (0..n)
            .map(|_| {
                let f = Features {
                    wr_ratio: rng.uniform(),
                    oios: rng.uniform() * 16.0,
                    ios: 1.0 + rng.uniform() * 15.0,
                    wr_rand: rng.uniform(),
                    rd_rand: rng.uniform(),
                    free_space_ratio: rng.uniform(),
                };
                Sample {
                    features: f,
                    // Latency depends on far more than the queue depth.
                    latency_us: 20.0
                        + 6.0 * f.oios
                        + 250.0 * f.rd_rand
                        + if f.free_space_ratio < 0.15 {
                            200.0
                        } else {
                            0.0
                        },
                }
            })
            .collect()
    }

    #[test]
    fn recovers_pure_oio_relationship() {
        let samples: Vec<Sample> = (0..50)
            .map(|i| Sample {
                features: Features {
                    oios: (i % 10) as f64,
                    ..Features::default()
                },
                latency_us: 7.0 + 3.0 * (i % 10) as f64,
            })
            .collect();
        let m = AggregationModel::fit(&samples);
        assert!((m.slope_us_per_oio() - 3.0).abs() < 1e-9);
        assert!((m.intercept_us() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn constant_oio_degenerates_to_mean() {
        let samples: Vec<Sample> = [10.0, 20.0, 30.0]
            .iter()
            .map(|&l| Sample {
                features: Features {
                    oios: 4.0,
                    ..Features::default()
                },
                latency_us: l,
            })
            .collect();
        let m = AggregationModel::fit(&samples);
        assert_eq!(m.slope_us_per_oio(), 0.0);
        assert!((m.predict(&samples[0].features) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn regression_tree_beats_aggregation_on_multifactor_workloads() {
        // The paper's §4.4 ablation: "the aggregation model is based on the
        // outstanding IOs only while the linear regression model considers
        // all the key and non-key factors."
        let train = multi_factor_samples(600, 42);
        let test = multi_factor_samples(200, 43);
        let agg = AggregationModel::fit(&train);
        let tree = PerfModel::train(&train.iter().cloned().collect::<Dataset>());
        let agg_err = rmse(
            test.iter()
                .map(|s| (agg.predict(&s.features), s.latency_us)),
        );
        let tree_err = rmse(
            test.iter()
                .map(|s| (tree.predict(&s.features), s.latency_us)),
        );
        assert!(
            tree_err < agg_err / 2.0,
            "tree rmse {tree_err} not clearly below aggregation rmse {agg_err}"
        );
    }
}
