//! Bus-contention estimation: `BC = MP − PP` (Eq. 3).
//!
//! The performance model is trained on contention-free observations, so at
//! run time the difference between the *measured* NVDIMM latency and the
//! model's prediction isolates the memory-bus contention component. The
//! storage manager uses this both to de-bias imbalance detection (Eq. 5
//! uses `PP`, not `MP`, for NVDIMMs) and to price migrations (Eq. 6).

use crate::features::Features;
use crate::PerfModel;
use nvhsm_sim::OnlineStats;

/// Online bus-contention estimator for one NVDIMM device.
#[derive(Debug, Clone)]
pub struct ContentionEstimator {
    history: OnlineStats,
}

impl ContentionEstimator {
    /// A fresh estimator.
    pub fn new() -> Self {
        ContentionEstimator {
            history: OnlineStats::new(),
        }
    }

    /// Computes the contention estimate for one epoch: measured latency
    /// minus predicted latency, clamped at zero (the model may slightly
    /// over-predict). Also records it into the running history.
    pub fn observe(&mut self, model: &PerfModel, features: &Features, measured_us: f64) -> f64 {
        let predicted = model.predict(features);
        let bc = (measured_us - predicted).max(0.0);
        self.history.add(bc);
        bc
    }

    /// Mean contention observed so far, µs.
    pub fn mean_us(&self) -> f64 {
        self.history.mean()
    }

    /// Number of epochs observed.
    pub fn epochs(&self) -> u64 {
        self.history.count()
    }
}

impl Default for ContentionEstimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{Dataset, Sample};

    fn flat_model(level: f64) -> PerfModel {
        let mut data = Dataset::new();
        for i in 0..32 {
            data.push(Sample {
                features: Features {
                    oios: (i % 4) as f64,
                    ..Features::default()
                },
                latency_us: level,
            });
        }
        PerfModel::train(&data)
    }

    #[test]
    fn contention_is_measured_minus_predicted() {
        let model = flat_model(50.0);
        let mut est = ContentionEstimator::new();
        let bc = est.observe(&model, &Features::default(), 80.0);
        assert!((bc - 30.0).abs() < 1.0, "bc {bc}");
    }

    #[test]
    fn contention_clamped_at_zero() {
        let model = flat_model(50.0);
        let mut est = ContentionEstimator::new();
        let bc = est.observe(&model, &Features::default(), 20.0);
        assert_eq!(bc, 0.0);
    }

    #[test]
    fn history_accumulates() {
        let model = flat_model(50.0);
        let mut est = ContentionEstimator::new();
        est.observe(&model, &Features::default(), 60.0);
        est.observe(&model, &Features::default(), 70.0);
        assert_eq!(est.epochs(), 2);
        assert!((est.mean_us() - 15.0).abs() < 1.0);
    }
}
