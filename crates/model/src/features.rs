//! The workload-characteristics feature vector (Eq. 2) and training data.

use serde::{Deserialize, Serialize};

/// Number of features in the `WC` vector.
pub const NUM_FEATURES: usize = 6;

/// Feature names, in `to_array` order.
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "wr_ratio",
    "oios",
    "ios",
    "wr_rand",
    "rd_rand",
    "free_space_ratio",
];

/// The `WC` workload-characteristics vector of Eq. 2.
///
/// # Examples
///
/// ```
/// use nvhsm_model::Features;
/// let f = Features { wr_ratio: 0.25, ios: 2.0, ..Features::default() };
/// assert_eq!(f.to_array()[0], 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Features {
    /// Fraction of writes among all requests.
    pub wr_ratio: f64,
    /// Outstanding I/Os.
    pub oios: f64,
    /// Mean request size in 4 KiB blocks.
    pub ios: f64,
    /// Random fraction of writes.
    pub wr_rand: f64,
    /// Random fraction of reads.
    pub rd_rand: f64,
    /// Free-space ratio (GC pressure proxy for flash devices).
    pub free_space_ratio: f64,
}

impl Features {
    /// The vector as an array in [`FEATURE_NAMES`] order.
    pub fn to_array(&self) -> [f64; NUM_FEATURES] {
        [
            self.wr_ratio,
            self.oios,
            self.ios,
            self.wr_rand,
            self.rd_rand,
            self.free_space_ratio,
        ]
    }

    /// Builds a vector from an array in [`FEATURE_NAMES`] order.
    pub fn from_array(a: [f64; NUM_FEATURES]) -> Self {
        Features {
            wr_ratio: a[0],
            oios: a[1],
            ios: a[2],
            wr_rand: a[3],
            rd_rand: a[4],
            free_space_ratio: a[5],
        }
    }

    /// Value of feature `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_FEATURES`.
    pub fn get(&self, index: usize) -> f64 {
        self.to_array()[index]
    }
}

/// One training observation: a feature vector and the measured latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Workload characteristics.
    pub features: Features,
    /// Observed latency in microseconds.
    pub latency_us: f64,
}

/// A collection of training samples.
///
/// # Examples
///
/// ```
/// use nvhsm_model::{Dataset, Features, Sample};
/// let mut d = Dataset::new();
/// d.push(Sample { features: Features::default(), latency_us: 10.0 });
/// assert_eq!(d.len(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    samples: Vec<Sample>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// The samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Splits deterministically into train/test by taking every `k`-th
    /// sample into the test set.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn split_every(&self, k: usize) -> (Dataset, Dataset) {
        assert!(k >= 2, "k must be at least 2");
        let mut train = Dataset::new();
        let mut test = Dataset::new();
        for (i, &s) in self.samples.iter().enumerate() {
            if i % k == 0 {
                test.push(s);
            } else {
                train.push(s);
            }
        }
        (train, test)
    }
}

impl FromIterator<Sample> for Dataset {
    fn from_iter<I: IntoIterator<Item = Sample>>(iter: I) -> Self {
        Dataset {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<Sample> for Dataset {
    fn extend<I: IntoIterator<Item = Sample>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_round_trip() {
        let f = Features {
            wr_ratio: 0.1,
            oios: 2.0,
            ios: 3.0,
            wr_rand: 0.4,
            rd_rand: 0.5,
            free_space_ratio: 0.6,
        };
        assert_eq!(Features::from_array(f.to_array()), f);
        for (i, name) in FEATURE_NAMES.iter().enumerate() {
            let _ = name;
            assert_eq!(f.get(i), f.to_array()[i]);
        }
    }

    #[test]
    fn split_every_partitions() {
        let d: Dataset = (0..10)
            .map(|i| Sample {
                features: Features::default(),
                latency_us: i as f64,
            })
            .collect();
        let (train, test) = d.split_every(5);
        assert_eq!(test.len(), 2);
        assert_eq!(train.len(), 8);
    }

    #[test]
    #[should_panic(expected = "k must be at least 2")]
    fn split_rejects_small_k() {
        let _ = Dataset::new().split_every(1);
    }
}
