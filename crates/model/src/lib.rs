//! The black-box storage performance model of the paper's §4.
//!
//! The model predicts a device's latency `PP = f(WC)` from six workload
//! characteristics (Eq. 2): write ratio, outstanding I/Os, request size,
//! write randomness, read randomness and free-space ratio. It is trained on
//! observed `(WC, latency)` samples collected *without* memory-bus
//! interference (or on non-NVDIMM devices, where none exists), and the bus
//! contention is then estimated online as `BC = MP − PP` (Eq. 3): the gap
//! between the measured latency and the contention-free prediction.
//!
//! The implementation follows §4.4: a CART-style **regression tree** built
//! by recursively choosing the split that minimizes the residual deviation
//! (RMSD) of the leaves, with either constant or **multiple linear
//! regression** leaf models.
//!
//! # Examples
//!
//! ```
//! use nvhsm_model::{Dataset, Features, PerfModel, Sample};
//!
//! let mut data = Dataset::new();
//! for i in 0..100 {
//!     let f = Features { oios: i as f64, ..Features::default() };
//!     data.push(Sample { features: f, latency_us: 10.0 + 2.0 * i as f64 });
//! }
//! let model = PerfModel::train(&data);
//! let pred = model.predict(&Features { oios: 50.0, ..Features::default() });
//! assert!((pred - 110.0).abs() < 15.0);
//! ```

pub mod aggregation;
pub mod contention;
pub mod features;
pub mod linreg;
pub mod metrics;
pub mod regtree;
pub mod validation;

pub use aggregation::AggregationModel;
pub use contention::ContentionEstimator;
pub use features::{Dataset, Features, Sample, FEATURE_NAMES, NUM_FEATURES};
pub use linreg::LinearRegression;
pub use metrics::{mape, r2, rmse};
pub use regtree::{FlatTree, LeafModel, RegTreeConfig, RegressionTree};
pub use validation::{cross_validate, feature_importance, CrossValidation};

use serde::{Deserialize, Serialize};

/// The trained device performance model: a regression tree over the Eq. 2
/// feature vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfModel {
    tree: RegressionTree,
}

impl PerfModel {
    /// Trains with default tree settings (linear-regression leaves).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn train(data: &Dataset) -> Self {
        Self::train_with(data, &RegTreeConfig::default())
    }

    /// Trains with explicit tree settings.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn train_with(data: &Dataset, cfg: &RegTreeConfig) -> Self {
        PerfModel {
            tree: RegressionTree::fit(data.samples(), cfg),
        }
    }

    /// Predicted latency (µs) for a workload-characteristics vector — the
    /// `PP` of Eq. 1.
    pub fn predict(&self, features: &Features) -> f64 {
        self.tree.predict(features)
    }

    /// The underlying tree (introspection: depth, first split, …).
    pub fn tree(&self) -> &RegressionTree {
        &self.tree
    }

    /// Serializes the trained model to JSON (train once offline, ship the
    /// model with the storage manager).
    ///
    /// # Errors
    ///
    /// Returns the underlying serialization error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Restores a model serialized with [`PerfModel::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_preserves_predictions() {
        let mut data = Dataset::new();
        for i in 0..64 {
            data.push(Sample {
                features: Features {
                    oios: (i % 8) as f64,
                    rd_rand: (i % 3) as f64 / 2.0,
                    ..Features::default()
                },
                latency_us: 10.0 + 3.0 * (i % 8) as f64,
            });
        }
        let model = PerfModel::train(&data);
        let json = model.to_json().unwrap();
        let back = PerfModel::from_json(&json).unwrap();
        for s in data.samples() {
            assert_eq!(model.predict(&s.features), back.predict(&s.features));
        }
    }

    #[test]
    fn model_learns_additive_structure() {
        let mut data = Dataset::new();
        for w in 0..10 {
            for o in 0..10 {
                let f = Features {
                    wr_ratio: w as f64 / 10.0,
                    oios: o as f64,
                    ..Features::default()
                };
                data.push(Sample {
                    features: f,
                    latency_us: 5.0 + 30.0 * f.wr_ratio + 4.0 * f.oios,
                });
            }
        }
        let model = PerfModel::train(&data);
        let probe = Features {
            wr_ratio: 0.45,
            oios: 4.5,
            ..Features::default()
        };
        let pred = model.predict(&probe);
        let truth = 5.0 + 30.0 * 0.45 + 4.0 * 4.5;
        assert!(
            (pred - truth).abs() / truth < 0.15,
            "pred {pred} truth {truth}"
        );
    }
}
