//! Multiple linear regression by regularized normal equations.
//!
//! Used both standalone (the paper's §4.4 "multiple linear regression")
//! and as the leaf model of the regression tree.

use crate::features::{Features, Sample, NUM_FEATURES};
use serde::{Deserialize, Serialize};

const DIM: usize = NUM_FEATURES + 1; // intercept + features

/// A fitted multiple linear regression `y = b0 + Σ bi·xi`.
///
/// # Examples
///
/// ```
/// use nvhsm_model::{Features, LinearRegression, Sample};
/// let samples: Vec<Sample> = (0..50)
///     .map(|i| Sample {
///         features: Features { oios: i as f64, ..Features::default() },
///         latency_us: 3.0 * i as f64 + 7.0,
///     })
///     .collect();
/// let lr = LinearRegression::fit(&samples);
/// let pred = lr.predict(&Features { oios: 10.0, ..Features::default() });
/// assert!((pred - 37.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    /// `[intercept, b_wr_ratio, b_oios, b_ios, b_wr_rand, b_rd_rand,
    /// b_free_space]`.
    coef: [f64; DIM],
}

impl LinearRegression {
    /// Fits by ridge-regularized normal equations (tiny ridge for numeric
    /// stability with degenerate designs).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn fit(samples: &[Sample]) -> Self {
        assert!(!samples.is_empty(), "cannot fit on an empty sample set");
        // Accumulate XᵀX and Xᵀy with X = [1, features...].
        let mut xtx = [[0.0f64; DIM]; DIM];
        let mut xty = [0.0f64; DIM];
        for s in samples {
            let mut row = [0.0f64; DIM];
            row[0] = 1.0;
            row[1..].copy_from_slice(&s.features.to_array());
            for i in 0..DIM {
                xty[i] += row[i] * s.latency_us;
                for j in 0..DIM {
                    xtx[i][j] += row[i] * row[j];
                }
            }
        }
        // Ridge scaled to the data magnitude keeps the solve stable even
        // when features are constant within the sample set.
        let ridge = 1e-8 * samples.len() as f64;
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += ridge.max(1e-12);
        }
        let coef = solve(xtx, xty);
        LinearRegression { coef }
    }

    /// Predicted latency for `features`.
    pub fn predict(&self, features: &Features) -> f64 {
        let x = features.to_array();
        self.coef[0]
            + self.coef[1..]
                .iter()
                .zip(x.iter())
                .map(|(c, v)| c * v)
                .sum::<f64>()
    }

    /// The fitted coefficients `[intercept, per-feature...]`.
    pub fn coefficients(&self) -> &[f64; DIM] {
        &self.coef
    }
}

/// Gaussian elimination with partial pivoting for the (small, SPD-ish)
/// normal-equation system.
// The elimination inner loop reads row `col` while writing row `row`;
// index form is the clearest way to express that dual-row access.
#[allow(clippy::needless_range_loop)]
fn solve(mut a: [[f64; DIM]; DIM], mut b: [f64; DIM]) -> [f64; DIM] {
    for col in 0..DIM {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..DIM {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-300 {
            continue; // degenerate direction; ridge keeps this rare
        }
        for row in col + 1..DIM {
            let factor = a[row][col] / diag;
            for k in col..DIM {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = [0.0f64; DIM];
    for col in (0..DIM).rev() {
        let mut acc = b[col];
        for k in col + 1..DIM {
            acc -= a[col][k] * x[k];
        }
        x[col] = if a[col][col].abs() < 1e-300 {
            0.0
        } else {
            acc / a[col][col]
        };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvhsm_sim::SimRng;

    #[test]
    fn recovers_known_coefficients() {
        let mut rng = SimRng::new(31);
        let samples: Vec<Sample> = (0..500)
            .map(|_| {
                let f = Features {
                    wr_ratio: rng.uniform(),
                    oios: rng.uniform() * 64.0,
                    ios: rng.uniform() * 16.0,
                    wr_rand: rng.uniform(),
                    rd_rand: rng.uniform(),
                    free_space_ratio: rng.uniform(),
                };
                Sample {
                    features: f,
                    latency_us: 10.0
                        + 5.0 * f.wr_ratio
                        + 2.0 * f.oios
                        + 1.5 * f.ios
                        + 8.0 * f.wr_rand
                        + 12.0 * f.rd_rand
                        - 20.0 * f.free_space_ratio,
                }
            })
            .collect();
        let lr = LinearRegression::fit(&samples);
        let c = lr.coefficients();
        let expect = [10.0, 5.0, 2.0, 1.5, 8.0, 12.0, -20.0];
        for (got, want) in c.iter().zip(expect.iter()) {
            // The stabilizing ridge perturbs coefficients by ~1e-6.
            assert!((got - want).abs() < 1e-4, "coef {got} vs {want}");
        }
    }

    #[test]
    fn noisy_fit_is_close() {
        let mut rng = SimRng::new(37);
        let samples: Vec<Sample> = (0..2000)
            .map(|_| {
                let f = Features {
                    oios: rng.uniform() * 32.0,
                    ..Features::default()
                };
                Sample {
                    features: f,
                    latency_us: 50.0 + 3.0 * f.oios + rng.normal(0.0, 5.0),
                }
            })
            .collect();
        let lr = LinearRegression::fit(&samples);
        let pred = lr.predict(&Features {
            oios: 16.0,
            ..Features::default()
        });
        assert!((pred - 98.0).abs() < 3.0, "pred {pred}");
    }

    #[test]
    fn constant_target_fits_constant() {
        let samples: Vec<Sample> = (0..10)
            .map(|i| Sample {
                features: Features {
                    oios: i as f64,
                    ..Features::default()
                },
                latency_us: 42.0,
            })
            .collect();
        let lr = LinearRegression::fit(&samples);
        let pred = lr.predict(&Features {
            oios: 100.0,
            ..Features::default()
        });
        assert!((pred - 42.0).abs() < 1e-3, "pred {pred}");
    }

    #[test]
    fn degenerate_single_sample_does_not_explode() {
        let samples = [Sample {
            features: Features::default(),
            latency_us: 5.0,
        }];
        let lr = LinearRegression::fit(&samples);
        let pred = lr.predict(&Features::default());
        assert!((pred - 5.0).abs() < 1e-3);
    }
}
