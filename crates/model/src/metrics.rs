//! Regression quality metrics.

/// Root mean squared error over `(prediction, truth)` pairs; 0 for an empty
/// iterator.
///
/// # Examples
///
/// ```
/// use nvhsm_model::rmse;
/// let e = rmse([(1.0, 2.0), (3.0, 3.0)].into_iter());
/// assert!((e - (0.5f64).sqrt()).abs() < 1e-12);
/// ```
pub fn rmse(pairs: impl Iterator<Item = (f64, f64)>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for (pred, truth) in pairs {
        sum += (pred - truth).powi(2);
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).sqrt()
    }
}

/// Mean absolute percentage error (fractional, e.g. 0.05 = 5 %); pairs with
/// zero truth are skipped.
pub fn mape(pairs: impl Iterator<Item = (f64, f64)>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for (pred, truth) in pairs {
        if truth != 0.0 {
            sum += ((pred - truth) / truth).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Coefficient of determination R²; 1 for a perfect fit, can be negative.
pub fn r2(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let mean = pairs.iter().map(|p| p.1).sum::<f64>() / pairs.len() as f64;
    let ss_tot: f64 = pairs.iter().map(|p| (p.1 - mean).powi(2)).sum();
    let ss_res: f64 = pairs.iter().map(|p| (p.0 - p.1).powi(2)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_basics() {
        assert_eq!(rmse(std::iter::empty()), 0.0);
        assert_eq!(rmse([(2.0, 2.0)].into_iter()), 0.0);
        assert!((rmse([(0.0, 3.0), (0.0, 4.0)].into_iter()) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_truth() {
        let e = mape([(1.0, 0.0), (110.0, 100.0)].into_iter());
        assert!((e - 0.1).abs() < 1e-12);
        assert_eq!(mape(std::iter::empty()), 0.0);
    }

    #[test]
    fn r2_perfect_and_mean_predictor() {
        assert!((r2(&[(1.0, 1.0), (2.0, 2.0)]) - 1.0).abs() < 1e-12);
        // Predicting the mean gives R² = 0.
        let pairs = [(1.5, 1.0), (1.5, 2.0)];
        assert!(r2(&pairs).abs() < 1e-12);
    }
}
