//! CART-style regression tree with RMSD split selection (§4.4, Fig. 6).
//!
//! Trees are built top-down; at every node the builder evaluates all
//! feature/threshold candidates and keeps the split that minimizes the
//! summed squared deviation of the two children (equivalently, the RMSD of
//! the leaves — the criterion the paper describes). Leaves predict either
//! the constant mean of their samples or a local multiple linear
//! regression.

use crate::features::{Features, Sample, NUM_FEATURES};
use crate::linreg::LinearRegression;
use serde::{Deserialize, Serialize};

/// What a leaf predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LeafModel {
    /// The mean latency of the leaf's training samples (the paper's
    /// "constant function of independent variables").
    Mean,
    /// A multiple linear regression fitted on the leaf's samples (the
    /// paper's combination of regression tree + linear regression).
    Linear,
}

/// Regression-tree hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegTreeConfig {
    /// Maximum tree depth (root = 0).
    pub max_depth: usize,
    /// Minimum samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Minimum relative variance reduction for a split to be kept.
    pub min_gain: f64,
    /// Leaf predictor kind.
    pub leaf_model: LeafModel,
}

impl Default for RegTreeConfig {
    fn default() -> Self {
        RegTreeConfig {
            max_depth: 8,
            min_samples_leaf: 8,
            min_gain: 1e-4,
            leaf_model: LeafModel::Linear,
        }
    }
}

impl RegTreeConfig {
    /// The paper's illustrative configuration: shallow tree, constant
    /// leaves (Fig. 6).
    pub fn constant_leaves() -> Self {
        RegTreeConfig {
            leaf_model: LeafModel::Mean,
            min_samples_leaf: 1,
            min_gain: 1e-9,
            ..Self::default()
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        mean: f64,
        lo: f64,
        hi: f64,
        linear: Option<LinearRegression>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted regression tree.
///
/// # Examples
///
/// ```
/// use nvhsm_model::{Features, RegressionTree, RegTreeConfig, Sample};
/// let samples: Vec<Sample> = (0..64)
///     .map(|i| Sample {
///         features: Features { free_space_ratio: (i % 2) as f64, ..Features::default() },
///         latency_us: if i % 2 == 0 { 80.0 } else { 40.0 },
///     })
///     .collect();
/// let tree = RegressionTree::fit(&samples, &RegTreeConfig::constant_leaves());
/// let f = Features { free_space_ratio: 0.0, ..Features::default() };
/// assert!((tree.predict(&f) - 80.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    root: Node,
    depth: usize,
    leaves: usize,
}

/// Sum of squared deviations from the mean.
fn sse(samples: &[&Sample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mean = samples.iter().map(|s| s.latency_us).sum::<f64>() / samples.len() as f64;
    samples.iter().map(|s| (s.latency_us - mean).powi(2)).sum()
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    sse_after: f64,
}

fn best_split(samples: &[&Sample], min_leaf: usize) -> Option<BestSplit> {
    let n = samples.len();
    if n < 2 * min_leaf {
        return None;
    }
    let mut best: Option<BestSplit> = None;
    for feature in 0..NUM_FEATURES {
        // Sort sample indices by this feature.
        let mut order: Vec<usize> = (0..n).collect();
        // total_cmp instead of partial_cmp().expect(): fitting now also
        // runs online on field-observed features (the residual-correction
        // refits), and a stray NaN should yield a poor split, not a
        // panic. For finite inputs the ordering is unchanged.
        order.sort_by(|&a, &b| {
            samples[a]
                .features
                .get(feature)
                .total_cmp(&samples[b].features.get(feature))
        });
        // Prefix sums of y and y² in feature order.
        let ys: Vec<f64> = order.iter().map(|&i| samples[i].latency_us).collect();
        let mut pref_y = vec![0.0; n + 1];
        let mut pref_y2 = vec![0.0; n + 1];
        for (i, &y) in ys.iter().enumerate() {
            pref_y[i + 1] = pref_y[i] + y;
            pref_y2[i + 1] = pref_y2[i] + y * y;
        }
        let total_y = pref_y[n];
        let total_y2 = pref_y2[n];
        // Candidate boundaries between distinct feature values.
        for cut in min_leaf..=n - min_leaf {
            let lo_val = samples[order[cut - 1]].features.get(feature);
            let hi_val = samples[order[cut]].features.get(feature);
            if lo_val == hi_val {
                continue;
            }
            let left_n = cut as f64;
            let right_n = (n - cut) as f64;
            let left_sse = pref_y2[cut] - pref_y[cut] * pref_y[cut] / left_n;
            let right_y = total_y - pref_y[cut];
            let right_sse = (total_y2 - pref_y2[cut]) - right_y * right_y / right_n;
            let after = left_sse + right_sse;
            if best.as_ref().is_none_or(|b| after < b.sse_after) {
                best = Some(BestSplit {
                    feature,
                    threshold: (lo_val + hi_val) / 2.0,
                    sse_after: after,
                });
            }
        }
    }
    best
}

fn build(samples: &[&Sample], cfg: &RegTreeConfig, depth: usize) -> (Node, usize, usize) {
    let make_leaf = |samples: &[&Sample]| -> Node {
        let mean = samples.iter().map(|s| s.latency_us).sum::<f64>() / samples.len() as f64;
        let lo = samples
            .iter()
            .map(|s| s.latency_us)
            .fold(f64::INFINITY, f64::min);
        let hi = samples
            .iter()
            .map(|s| s.latency_us)
            .fold(f64::NEG_INFINITY, f64::max);
        let linear = match cfg.leaf_model {
            LeafModel::Mean => None,
            LeafModel::Linear => {
                let owned: Vec<Sample> = samples.iter().map(|&&s| s).collect();
                Some(LinearRegression::fit(&owned))
            }
        };
        Node::Leaf {
            mean,
            lo,
            hi,
            linear,
        }
    };

    let parent_sse = sse(samples);
    if depth >= cfg.max_depth || parent_sse <= f64::EPSILON {
        return (make_leaf(samples), depth, 1);
    }
    let Some(split) = best_split(samples, cfg.min_samples_leaf) else {
        return (make_leaf(samples), depth, 1);
    };
    let gain = (parent_sse - split.sse_after) / parent_sse.max(f64::MIN_POSITIVE);
    if gain < cfg.min_gain {
        return (make_leaf(samples), depth, 1);
    }
    let (left_samples, right_samples): (Vec<&Sample>, Vec<&Sample>) = samples
        .iter()
        .partition(|s| s.features.get(split.feature) <= split.threshold);
    let (left, ld, ll) = build(&left_samples, cfg, depth + 1);
    let (right, rd, rl) = build(&right_samples, cfg, depth + 1);
    (
        Node::Split {
            feature: split.feature,
            threshold: split.threshold,
            left: Box::new(left),
            right: Box::new(right),
        },
        ld.max(rd),
        ll + rl,
    )
}

impl RegressionTree {
    /// Fits a tree.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn fit(samples: &[Sample], cfg: &RegTreeConfig) -> Self {
        assert!(!samples.is_empty(), "cannot fit on an empty sample set");
        let refs: Vec<&Sample> = samples.iter().collect();
        let (root, depth, leaves) = build(&refs, cfg, 0);
        RegressionTree {
            root,
            depth,
            leaves,
        }
    }

    /// Predicted latency for `features`, clamped to the range of the leaf's
    /// training targets (keeps linear leaves from extrapolating wildly).
    pub fn predict(&self, features: &Features) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf {
                    mean,
                    lo,
                    hi,
                    linear,
                } => {
                    let raw = match linear {
                        Some(lr) => lr.predict(features),
                        None => *mean,
                    };
                    return raw.clamp(*lo, *hi);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features.get(*feature) <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Flattens a constant-leaf tree into a [`FlatTree`] for hot-path
    /// prediction. Returns `None` when any leaf carries a linear model:
    /// those leaves need the full per-feature dot product and gain
    /// nothing from flattening.
    pub fn flatten(&self) -> Option<FlatTree> {
        fn emit(node: &Node, out: &mut Vec<FlatNode>) -> Option<()> {
            match node {
                Node::Leaf {
                    mean,
                    lo,
                    hi,
                    linear,
                } => {
                    if linear.is_some() {
                        return None;
                    }
                    out.push(FlatNode {
                        feature: FLAT_LEAF,
                        right: 0,
                        threshold: 0.0,
                        // Exactly what `predict` computes for this leaf.
                        value: mean.clamp(*lo, *hi),
                    });
                    Some(())
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let here = out.len();
                    out.push(FlatNode {
                        feature: *feature as u32,
                        right: 0,
                        threshold: *threshold,
                        value: 0.0,
                    });
                    // Preorder: the left child sits at `here + 1`, so only
                    // the right child's index needs storing.
                    emit(left, out)?;
                    out[here].right = out.len() as u32;
                    emit(right, out)
                }
            }
        }
        let mut nodes = Vec::with_capacity(2 * self.leaves);
        emit(&self.root, &mut nodes)?;
        Some(FlatTree { nodes })
    }

    /// Feature index of the root split, if the tree has one (the "best
    /// first split" of the paper's Fig. 6 walk-through).
    pub fn root_split_feature(&self) -> Option<usize> {
        match &self.root {
            Node::Split { feature, .. } => Some(*feature),
            Node::Leaf { .. } => None,
        }
    }

    /// Feature indices of the root's immediate children splits (empty for
    /// leaf children).
    pub fn second_level_features(&self) -> Vec<usize> {
        let mut out = Vec::new();
        if let Node::Split { left, right, .. } = &self.root {
            for child in [left.as_ref(), right.as_ref()] {
                if let Node::Split { feature, .. } = child {
                    out.push(*feature);
                }
            }
        }
        out
    }

    /// Maximum depth reached.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves
    }
}

/// Leaf sentinel in [`FlatNode::feature`].
const FLAT_LEAF: u32 = u32::MAX;

/// One node of a [`FlatTree`], sized and laid out for the walk: the
/// comparison operands come out of one cache line, leaves carry their
/// precomputed (already clamped) value, and the left child is implicit
/// at the next index.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct FlatNode {
    /// Split feature index, or [`FLAT_LEAF`] for a leaf.
    feature: u32,
    /// Preorder index of the right child (left child is `self + 1`).
    right: u32,
    /// Split threshold.
    threshold: f64,
    /// Leaf prediction.
    value: f64,
}

/// A constant-leaf [`RegressionTree`] flattened into one preorder array.
///
/// Prediction is bit-identical to the boxed tree it was flattened from —
/// same comparisons, same leaf values — but walks contiguous memory
/// instead of chasing `Box` pointers, which matters on the
/// epoch-decision hot path where the online source pays one extra
/// correction walk per prediction. Built with
/// [`RegressionTree::flatten`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatTree {
    nodes: Vec<FlatNode>,
}

impl FlatTree {
    /// Predicted value for `features`; bit-identical to the source
    /// tree's [`RegressionTree::predict`].
    pub fn predict(&self, features: &Features) -> f64 {
        let mut i = 0usize;
        loop {
            let n = &self.nodes[i];
            if n.feature == FLAT_LEAF {
                return n.value;
            }
            i = if features.get(n.feature as usize) <= n.threshold {
                i + 1
            } else {
                n.right as usize
            };
        }
    }

    /// Number of nodes (splits + leaves) in the flattened array.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;
    use nvhsm_sim::SimRng;
    use proptest::prelude::*;

    /// The paper's Table 3 training samples (IOS in 4 KiB blocks).
    fn table3() -> Vec<Sample> {
        let rows = [
            (0.25, 1.0, 0.10, 65.0),
            (0.25, 2.0, 0.60, 40.0),
            (0.50, 1.0, 0.60, 42.0),
            (0.50, 2.0, 0.10, 85.0),
            (0.75, 1.0, 0.60, 32.0),
            (0.75, 2.0, 0.10, 80.0),
        ];
        rows.iter()
            .map(|&(wr, ios, fsr, lat)| Sample {
                features: Features {
                    wr_ratio: wr,
                    ios,
                    free_space_ratio: fsr,
                    ..Features::default()
                },
                latency_us: lat,
            })
            .collect()
    }

    #[test]
    fn table3_best_first_split_is_free_space_ratio() {
        // Fig. 6 (a): splitting on free_space_ratio yields the lowest RMSD
        // and becomes the root.
        let tree = RegressionTree::fit(&table3(), &RegTreeConfig::constant_leaves());
        assert_eq!(
            tree.root_split_feature(),
            Some(5),
            "root should split on free_space_ratio"
        );
        // Fig. 6 (b) illustrates IOS as the next split; under exact RMSD
        // minimization wr_ratio ties IOS on one child and beats it on the
        // other, so either is a legitimate second level. What matters is
        // that the tree separates the remaining structure perfectly.
        let second = tree.second_level_features();
        assert!(
            second.iter().all(|f| *f == 0 || *f == 2),
            "level-2 splits should use wr_ratio or IOS, got {second:?}"
        );
        for s in table3() {
            assert!(
                (tree.predict(&s.features) - s.latency_us).abs() < 1e-9,
                "training sample not fitted exactly"
            );
        }
    }

    #[test]
    fn flattened_tree_predicts_bit_identical_to_boxed() {
        let mut rng = SimRng::new(51);
        let samples: Vec<Sample> = (0..300)
            .map(|_| {
                let f = Features {
                    oios: rng.uniform() * 32.0,
                    wr_ratio: rng.uniform(),
                    rd_rand: rng.uniform(),
                    ..Features::default()
                };
                Sample {
                    features: f,
                    latency_us: 15.0 + 2.0 * f.oios + 40.0 * f.wr_ratio,
                }
            })
            .collect();
        let tree = RegressionTree::fit(
            &samples,
            &RegTreeConfig {
                leaf_model: LeafModel::Mean,
                ..RegTreeConfig::default()
            },
        );
        let flat = tree.flatten().expect("mean leaves flatten");
        assert!(flat.node_count() >= tree.leaf_count());
        for _ in 0..500 {
            let f = Features {
                oios: rng.uniform() * 40.0 - 4.0,
                wr_ratio: rng.uniform() * 1.2,
                rd_rand: rng.uniform(),
                ..Features::default()
            };
            assert_eq!(flat.predict(&f).to_bits(), tree.predict(&f).to_bits());
        }
    }

    #[test]
    fn linear_leaf_trees_refuse_to_flatten() {
        let tree = RegressionTree::fit(&table3(), &RegTreeConfig::default());
        assert!(tree.flatten().is_none());
    }

    #[test]
    fn predictions_within_training_range() {
        let tree = RegressionTree::fit(&table3(), &RegTreeConfig::default());
        let probe = Features {
            wr_ratio: 0.9,
            ios: 4.0,
            free_space_ratio: 0.0,
            ..Features::default()
        };
        let pred = tree.predict(&probe);
        assert!((32.0..=85.0).contains(&pred), "pred {pred}");
    }

    #[test]
    fn deeper_trees_do_not_increase_training_error() {
        let mut rng = SimRng::new(71);
        let samples: Vec<Sample> = (0..400)
            .map(|_| {
                let f = Features {
                    oios: rng.uniform() * 32.0,
                    rd_rand: rng.uniform(),
                    ..Features::default()
                };
                Sample {
                    features: f,
                    latency_us: 20.0 + 3.0 * f.oios + 50.0 * f.rd_rand * f.rd_rand,
                }
            })
            .collect();
        let mut last = f64::INFINITY;
        for depth in [1usize, 2, 4, 8] {
            let cfg = RegTreeConfig {
                max_depth: depth,
                leaf_model: LeafModel::Mean,
                ..RegTreeConfig::default()
            };
            let tree = RegressionTree::fit(&samples, &cfg);
            let err = rmse(
                samples
                    .iter()
                    .map(|s| (tree.predict(&s.features), s.latency_us)),
            );
            assert!(
                err <= last + 1e-9,
                "depth {depth}: rmse {err} > previous {last}"
            );
            last = err;
        }
    }

    #[test]
    fn linear_leaves_beat_constant_leaves_on_linear_data() {
        let mut rng = SimRng::new(73);
        let samples: Vec<Sample> = (0..300)
            .map(|_| {
                let f = Features {
                    oios: rng.uniform() * 64.0,
                    ..Features::default()
                };
                Sample {
                    features: f,
                    latency_us: 5.0 + 2.0 * f.oios,
                }
            })
            .collect();
        let shallow = RegTreeConfig {
            max_depth: 2,
            ..RegTreeConfig::default()
        };
        let constant = RegressionTree::fit(
            &samples,
            &RegTreeConfig {
                leaf_model: LeafModel::Mean,
                ..shallow.clone()
            },
        );
        let linear = RegressionTree::fit(&samples, &shallow);
        let e_const = rmse(
            samples
                .iter()
                .map(|s| (constant.predict(&s.features), s.latency_us)),
        );
        let e_lin = rmse(
            samples
                .iter()
                .map(|s| (linear.predict(&s.features), s.latency_us)),
        );
        assert!(
            e_lin < e_const / 2.0,
            "linear {e_lin} vs constant {e_const}"
        );
    }

    #[test]
    fn single_sample_is_a_leaf() {
        let samples = [Sample {
            features: Features::default(),
            latency_us: 9.0,
        }];
        let tree = RegressionTree::fit(&samples, &RegTreeConfig::default());
        assert_eq!(tree.root_split_feature(), None);
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.predict(&Features::default()), 9.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Predictions never leave the envelope of training targets.
        #[test]
        fn prop_prediction_bounded(
            latencies in proptest::collection::vec(1.0f64..1e4, 4..120),
            probe_oios in 0.0f64..128.0,
        ) {
            let samples: Vec<Sample> = latencies
                .iter()
                .enumerate()
                .map(|(i, &l)| Sample {
                    features: Features {
                        oios: (i % 17) as f64,
                        ios: (i % 5) as f64,
                        ..Features::default()
                    },
                    latency_us: l,
                })
                .collect();
            let tree = RegressionTree::fit(&samples, &RegTreeConfig::default());
            let lo = latencies.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = latencies.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let pred = tree.predict(&Features { oios: probe_oios, ..Features::default() });
            prop_assert!(pred >= lo - 1e-9 && pred <= hi + 1e-9, "pred {} outside [{}, {}]", pred, lo, hi);
        }
    }
}
