//! Model validation: k-fold cross-validation and permutation feature
//! importance.
//!
//! The paper argues its training data must be "representative (to span a
//! wide spectrum) and sufficient (to have an adequate number of tests)";
//! these utilities are how a user of this library checks both claims on
//! their own data.

use crate::features::{Dataset, Features, Sample, FEATURE_NAMES, NUM_FEATURES};
use crate::metrics::rmse;
use crate::regtree::RegTreeConfig;
use crate::PerfModel;
use nvhsm_sim::SimRng;

/// Result of a cross-validation run.
#[derive(Debug, Clone)]
pub struct CrossValidation {
    /// Per-fold RMSE on the held-out fold.
    pub fold_rmse: Vec<f64>,
}

impl CrossValidation {
    /// Mean RMSE across folds.
    pub fn mean_rmse(&self) -> f64 {
        self.fold_rmse.iter().sum::<f64>() / self.fold_rmse.len().max(1) as f64
    }

    /// Largest fold RMSE (the weakest region of the feature space).
    pub fn worst_rmse(&self) -> f64 {
        self.fold_rmse.iter().cloned().fold(0.0, f64::max)
    }
}

/// Runs `k`-fold cross-validation of the performance model on `data`.
///
/// # Panics
///
/// Panics if `k < 2` or the dataset has fewer than `k` samples.
pub fn cross_validate(data: &Dataset, k: usize, cfg: &RegTreeConfig) -> CrossValidation {
    assert!(k >= 2, "need at least two folds");
    assert!(data.len() >= k, "need at least k samples");
    let samples = data.samples();
    let mut fold_rmse = Vec::with_capacity(k);
    for fold in 0..k {
        let train: Dataset = samples
            .iter()
            .enumerate()
            .filter(|(i, _)| i % k != fold)
            .map(|(_, &s)| s)
            .collect();
        let test: Vec<&Sample> = samples
            .iter()
            .enumerate()
            .filter(|(i, _)| i % k == fold)
            .map(|(_, s)| s)
            .collect();
        let model = PerfModel::train_with(&train, cfg);
        fold_rmse.push(rmse(
            test.iter()
                .map(|s| (model.predict(&s.features), s.latency_us)),
        ));
    }
    CrossValidation { fold_rmse }
}

/// Permutation importance of each feature: how much the model's RMSE
/// degrades when that feature's column is shuffled. Returned in
/// [`FEATURE_NAMES`] order as `(name, rmse_increase)`.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn feature_importance(
    model: &PerfModel,
    data: &Dataset,
    seed: u64,
) -> Vec<(&'static str, f64)> {
    assert!(!data.is_empty(), "empty dataset");
    let samples = data.samples();
    let base = rmse(
        samples
            .iter()
            .map(|s| (model.predict(&s.features), s.latency_us)),
    );
    let mut rng = SimRng::new(seed);
    let mut out = Vec::with_capacity(NUM_FEATURES);
    for fi in 0..NUM_FEATURES {
        // Fisher–Yates permutation of feature column `fi`.
        let mut column: Vec<f64> = samples.iter().map(|s| s.features.get(fi)).collect();
        for i in (1..column.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            column.swap(i, j);
        }
        let permuted_rmse = rmse(samples.iter().enumerate().map(|(i, s)| {
            let mut arr = s.features.to_array();
            arr[fi] = column[i];
            (model.predict(&Features::from_array(arr)), s.latency_us)
        }));
        out.push((FEATURE_NAMES[fi], (permuted_rmse - base).max(0.0)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = SimRng::new(seed);
        (0..n)
            .map(|_| {
                let f = Features {
                    wr_ratio: rng.uniform(),
                    oios: rng.uniform() * 16.0,
                    ios: 1.0 + rng.uniform() * 7.0,
                    wr_rand: rng.uniform(),
                    rd_rand: rng.uniform(),
                    free_space_ratio: rng.uniform(),
                };
                Sample {
                    features: f,
                    latency_us: 30.0 + 200.0 * f.rd_rand + 5.0 * f.oios,
                }
            })
            .collect()
    }

    #[test]
    fn cross_validation_errors_are_moderate_on_learnable_data() {
        let data = dataset(400, 1);
        let cv = cross_validate(&data, 5, &RegTreeConfig::default());
        assert_eq!(cv.fold_rmse.len(), 5);
        // Target spans ~30..250; a useful model should be well under the
        // target's own standard deviation (~60).
        assert!(cv.mean_rmse() < 30.0, "mean rmse {}", cv.mean_rmse());
        assert!(cv.worst_rmse() >= cv.mean_rmse());
    }

    #[test]
    fn importance_ranks_the_real_drivers_first() {
        let data = dataset(500, 2);
        let model = PerfModel::train(&data);
        let importance = feature_importance(&model, &data, 3);
        let get = |name: &str| {
            importance
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        // rd_rand dominates the synthetic target; wr_rand is irrelevant.
        assert!(
            get("rd_rand") > get("wr_rand") * 3.0,
            "importances: {importance:?}"
        );
        assert!(get("oios") > get("wr_ratio"), "importances: {importance:?}");
    }

    #[test]
    #[should_panic(expected = "need at least two folds")]
    fn rejects_single_fold() {
        let _ = cross_validate(&dataset(10, 4), 1, &RegTreeConfig::default());
    }
}
