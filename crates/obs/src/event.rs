//! Typed trace events.
//!
//! One enum covers every instrumented layer: device submit/complete and
//! fault-gate outcomes, node-level retry/backoff and mirrored-write
//! fallback, the five migration phase transitions, manager placement and
//! imbalance decisions, and flash-controller barrier scheduling. Variants
//! carry only plain data (integers, floats, short strings) so events can
//! outlive the simulator state that produced them, and field names are kept
//! short because golden trace files check these lines in verbatim.
//!
//! Serialized form is externally tagged JSON, one event per line:
//!
//! ```text
//! {"IoSubmit":{"t":1000,"dev":"SSD","stream":3,"block":96,"len":8,"op":"W"}}
//! ```

use serde::{Deserialize, Serialize};

/// Fault-gate outcome classes (mirrors `nvhsm_device::IoError`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Retryable error: the request failed but the device still responds.
    Transient,
    /// The device is inside an offline window; nothing can be served.
    Offline,
}

/// Migration phase-transition classes, for filtering trace streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationPhase {
    /// Copy began.
    Start,
    /// Copy paused because an endpoint went offline.
    Suspend,
    /// Copy resumed from the dirty-block bitmap.
    Resume,
    /// Migration gave up; dirty blocks rolled back to the source.
    Abort,
    /// Copy finished and the resident moved to the destination.
    Cutover,
}

/// One structured trace event. All timestamps `t` are simulated
/// nanoseconds except the barrier events, which use the flash
/// controller's native microsecond clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A request entered a device (fault gate passed).
    IoSubmit {
        /// Simulated time, ns.
        t: u64,
        /// Device kind label (`NVDIMM` / `SSD` / `HDD`).
        dev: String,
        /// Workload stream id.
        stream: u32,
        /// First 4 KiB block.
        block: u64,
        /// Request length in blocks.
        len: u32,
        /// `R` or `W`.
        op: String,
    },
    /// A request finished service on a device.
    IoComplete {
        /// Simulated time the request completed, ns.
        t: u64,
        /// Device kind label.
        dev: String,
        /// Workload stream id.
        stream: u32,
        /// Service latency, ns.
        latency_ns: u64,
    },
    /// The fault gate rejected a request.
    IoFault {
        /// Simulated time, ns.
        t: u64,
        /// Device kind label.
        dev: String,
        /// Outcome class.
        kind: FaultKind,
    },
    /// The node re-queued a failed request with backoff.
    Retry {
        /// Simulated time of the retry decision, ns.
        t: u64,
        /// Resident VMDK the request belongs to.
        vmdk: u32,
        /// 1-based retry attempt number.
        attempt: u32,
        /// Backoff delay before re-submission, ns.
        backoff_ns: u64,
    },
    /// A mirrored write fell back to the migration source.
    MirrorFallback {
        /// Simulated time, ns.
        t: u64,
        /// Migrating VMDK.
        vmdk: u32,
        /// Device the write fell back to.
        dst: String,
    },
    /// Migration copy began.
    MigrationStart {
        /// Simulated time, ns.
        t: u64,
        /// Migrating VMDK.
        vmdk: u32,
        /// Source datastore device label.
        src: String,
        /// Destination datastore device label.
        dst: String,
        /// Copy mode (`FullCopy` / `Mirror` / `Lazy`).
        mode: String,
        /// Total blocks to move.
        blocks: u64,
    },
    /// Migration copy paused (endpoint offline).
    MigrationSuspend {
        /// Simulated time, ns.
        t: u64,
        /// Migrating VMDK.
        vmdk: u32,
        /// Blocks copied so far.
        copied: u64,
    },
    /// Migration copy resumed from the dirty-block bitmap.
    MigrationResume {
        /// Simulated time, ns.
        t: u64,
        /// Migrating VMDK.
        vmdk: u32,
        /// Blocks still to copy.
        remaining: u64,
    },
    /// Migration aborted; destination-only writes rolled back.
    MigrationAbort {
        /// Simulated time, ns.
        t: u64,
        /// Migrating VMDK.
        vmdk: u32,
        /// Dirty blocks written back to the source.
        rolled_back: u64,
    },
    /// Migration finished; resident now lives on the destination.
    MigrationCutover {
        /// Simulated time, ns.
        t: u64,
        /// Migrated VMDK.
        vmdk: u32,
        /// Blocks moved by the copy engine.
        copied: u64,
        /// Writes mirrored to both endpoints during the copy.
        mirrored: u64,
        /// Stale-source writes recorded for lazy mode.
        stale: u64,
    },
    /// Initial placement decision for a resident.
    Placement {
        /// Simulated time, ns.
        t: u64,
        /// Placed VMDK.
        vmdk: u32,
        /// Chosen datastore device label.
        dst: String,
    },
    /// Eq. 5 imbalance evaluation at an epoch boundary.
    ImbalanceTrigger {
        /// Simulated time, ns.
        t: u64,
        /// Epoch ordinal.
        epoch: u64,
        /// Measured imbalance metric.
        imbalance: f64,
        /// Whether the threshold fired.
        triggered: bool,
        /// Whether a cost-benefit veto cancelled the migration.
        vetoed: bool,
    },
    /// A degraded device's resident is being evacuated.
    Evacuation {
        /// Simulated time, ns.
        t: u64,
        /// Evacuated VMDK.
        vmdk: u32,
        /// Degraded source device label.
        src: String,
        /// Destination device label.
        dst: String,
    },
    /// A batch of migration blocks crossed the node interconnect.
    NetTransfer {
        /// Simulated time the batch was handed to the NIC, ns.
        t: u64,
        /// Sending node.
        src_node: u32,
        /// Receiving node.
        dst_node: u32,
        /// Payload bytes put on the wire.
        bytes: u64,
        /// Blocks in the batch.
        blocks: u32,
    },
    /// A migration whose endpoints live on different nodes began.
    RemoteMigrationStart {
        /// Simulated time, ns.
        t: u64,
        /// Migrating VMDK.
        vmdk: u32,
        /// Node holding the source datastore.
        src_node: u32,
        /// Node holding the destination datastore.
        dst_node: u32,
        /// Total blocks to move over the interconnect.
        blocks: u64,
    },
    /// A cross-node migration finished its cutover.
    RemoteMigrationCutover {
        /// Simulated time, ns.
        t: u64,
        /// Migrated VMDK.
        vmdk: u32,
        /// Node holding the source datastore.
        src_node: u32,
        /// Node holding the destination datastore.
        dst_node: u32,
        /// Bytes the migration put on the interconnect overall.
        net_bytes: u64,
    },
    /// A whole node lost power; every device on it went dark and all
    /// volatile node state (in-flight copy progress, queued requests) was
    /// dropped.
    NodeCrash {
        /// Simulated time of the power loss, ns.
        t: u64,
        /// Crashed node.
        node: u32,
        /// Active migrations touching the node that were suspended.
        suspended: u32,
    },
    /// Power returned and the node began replaying its durable state.
    ReplayStart {
        /// Simulated time, ns.
        t: u64,
        /// Recovering node.
        node: u32,
        /// Journaled migration entries found in durable state.
        journaled: u32,
    },
    /// Durable-state replay finished; the node is serving again.
    ReplayComplete {
        /// Simulated time replay finished (crash instant + replay cost), ns.
        t: u64,
        /// Recovered node.
        node: u32,
        /// Migrations resumed from their journaled bitmaps.
        resumed: u32,
        /// Migrations rolled back per the abort recovery policy.
        aborted: u32,
    },
    /// The scrubber found a latent-corrupt block and rewrote it.
    ScrubRepair {
        /// Simulated time of the repair, ns.
        t: u64,
        /// Device holding the corrupt block.
        dev: String,
        /// Node the device lives on.
        node: u32,
        /// Scrubbed VMDK.
        vmdk: u32,
        /// `true` when the good copy came from the migration mirror,
        /// `false` for an in-place rewrite.
        mirror: bool,
    },
    /// A tenant was admitted to the serving plane: its quota was granted
    /// and all of its VMDKs were placed.
    TenantAdmit {
        /// Simulated time, ns.
        t: u64,
        /// Admitted tenant.
        tenant: u32,
        /// VMDKs placed for the tenant.
        vmdks: u32,
        /// Total blocks the tenant's VMDKs occupy.
        blocks: u64,
    },
    /// A tenant departed: its VMDKs were removed and its quota released.
    TenantRetire {
        /// Simulated time, ns.
        t: u64,
        /// Retired tenant.
        tenant: u32,
        /// Epochs the tenant spent in SLO violation over its lifetime.
        violations: u64,
    },
    /// A tenant's p99 latency exceeded its SLO this epoch (emitted on the
    /// violation *onset*; consecutive violating epochs are counted in
    /// metrics, not re-emitted).
    SloViolation {
        /// Simulated time, ns.
        t: u64,
        /// Violating tenant.
        tenant: u32,
        /// The tenant's p99 latency this epoch, µs.
        p99_us: f64,
        /// The tenant's SLO bound, µs.
        slo_us: f64,
    },
    /// The flash scheduler dispatched a request past the barrier check.
    BarrierDispatch {
        /// Controller clock, µs.
        t: u64,
        /// Scheduling policy label (`baseline` / `p1` / `p2` / ...).
        policy: String,
        /// Request id.
        req: u64,
        /// `true` for migration-class requests.
        migrated: bool,
        /// `true` when the no-postponement barrier boosted a starved
        /// migration request to the front.
        boosted: bool,
    },
    /// Policy Two discarded a migration write aliased by a newer host
    /// write.
    BarrierDiscard {
        /// Controller clock, µs.
        t: u64,
        /// Scheduling policy label.
        policy: String,
        /// Discarded request id.
        req: u64,
    },
    /// The online model's windowed prediction-error statistic crossed its
    /// threshold for one device tier.
    DriftDetected {
        /// Simulated time, ns.
        t: u64,
        /// Affected device tier label (`nvdimm` / `ssd` / `hdd`).
        device: String,
        /// Page–Hinkley statistic at the crossing, µs.
        stat_us: f64,
        /// The configured drift threshold λ, µs.
        threshold_us: f64,
    },
    /// The staged buffer cache served a read without touching the device.
    CacheHit {
        /// Simulated time, ns.
        t: u64,
        /// Device kind label of the backing datastore.
        dev: String,
        /// Node the cache's datastore lives on.
        node: u32,
        /// The 4 KiB block served from cache.
        block: u64,
    },
    /// The staged buffer cache missed; the fill was charged to the device.
    CacheMiss {
        /// Simulated time, ns.
        t: u64,
        /// Device kind label of the backing datastore.
        dev: String,
        /// Node the cache's datastore lives on.
        node: u32,
        /// The missed 4 KiB block.
        block: u64,
        /// `true` when admitting the fill evicted a victim.
        evicted: bool,
    },
    /// The staged buffer cache evicted a block to admit a fill.
    CacheEvict {
        /// Simulated time, ns.
        t: u64,
        /// Device kind label of the backing datastore.
        dev: String,
        /// Node the cache's datastore lives on.
        node: u32,
        /// The evicted 4 KiB block.
        block: u64,
        /// `true` when the victim was dirty (a flash write-back was
        /// charged through the fault-gated device path).
        dirty: bool,
    },
    /// A migration-sweep access skipped the staged cache structurally.
    CacheBypass {
        /// Simulated time, ns.
        t: u64,
        /// Device kind label of the backing datastore.
        dev: String,
        /// Node the cache's datastore lives on.
        node: u32,
        /// The bypassed 4 KiB block.
        block: u64,
    },
    /// The online model installed a refit correction for one device tier.
    ModelRefit {
        /// Simulated time, ns.
        t: u64,
        /// Affected device tier label (`nvdimm` / `ssd` / `hdd`).
        device: String,
        /// Window samples the refit trained on.
        samples: u64,
        /// Mean absolute prediction error over the window before the
        /// refit, µs.
        err_before_us: f64,
        /// Mean absolute prediction error over the window after the
        /// refit, µs.
        err_after_us: f64,
    },
}

impl TraceEvent {
    /// The migration phase this event represents, if it is one of the five
    /// phase-transition events.
    pub fn migration_phase(&self) -> Option<MigrationPhase> {
        match self {
            TraceEvent::MigrationStart { .. } => Some(MigrationPhase::Start),
            TraceEvent::MigrationSuspend { .. } => Some(MigrationPhase::Suspend),
            TraceEvent::MigrationResume { .. } => Some(MigrationPhase::Resume),
            TraceEvent::MigrationAbort { .. } => Some(MigrationPhase::Abort),
            TraceEvent::MigrationCutover { .. } => Some(MigrationPhase::Cutover),
            _ => None,
        }
    }

    /// Short kind label (`"IoSubmit"`, `"MigrationAbort"`, ...) for
    /// filtering and metrics keys.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::IoSubmit { .. } => "IoSubmit",
            TraceEvent::IoComplete { .. } => "IoComplete",
            TraceEvent::IoFault { .. } => "IoFault",
            TraceEvent::Retry { .. } => "Retry",
            TraceEvent::MirrorFallback { .. } => "MirrorFallback",
            TraceEvent::MigrationStart { .. } => "MigrationStart",
            TraceEvent::MigrationSuspend { .. } => "MigrationSuspend",
            TraceEvent::MigrationResume { .. } => "MigrationResume",
            TraceEvent::MigrationAbort { .. } => "MigrationAbort",
            TraceEvent::MigrationCutover { .. } => "MigrationCutover",
            TraceEvent::Placement { .. } => "Placement",
            TraceEvent::ImbalanceTrigger { .. } => "ImbalanceTrigger",
            TraceEvent::Evacuation { .. } => "Evacuation",
            TraceEvent::NetTransfer { .. } => "NetTransfer",
            TraceEvent::RemoteMigrationStart { .. } => "RemoteMigrationStart",
            TraceEvent::RemoteMigrationCutover { .. } => "RemoteMigrationCutover",
            TraceEvent::NodeCrash { .. } => "NodeCrash",
            TraceEvent::ReplayStart { .. } => "ReplayStart",
            TraceEvent::ReplayComplete { .. } => "ReplayComplete",
            TraceEvent::ScrubRepair { .. } => "ScrubRepair",
            TraceEvent::TenantAdmit { .. } => "TenantAdmit",
            TraceEvent::TenantRetire { .. } => "TenantRetire",
            TraceEvent::SloViolation { .. } => "SloViolation",
            TraceEvent::BarrierDispatch { .. } => "BarrierDispatch",
            TraceEvent::BarrierDiscard { .. } => "BarrierDiscard",
            TraceEvent::DriftDetected { .. } => "DriftDetected",
            TraceEvent::CacheHit { .. } => "CacheHit",
            TraceEvent::CacheMiss { .. } => "CacheMiss",
            TraceEvent::CacheEvict { .. } => "CacheEvict",
            TraceEvent::CacheBypass { .. } => "CacheBypass",
            TraceEvent::ModelRefit { .. } => "ModelRefit",
        }
    }
}
