//! Observability layer: structured trace events, pluggable sinks, and a
//! metrics registry for the NVDIMM heterogeneous-storage simulator.
//!
//! The simulator is deterministic, so a recorded trace is a *total ordering*
//! of internal behaviour: every I/O submission, fault-gate outcome, retry,
//! migration phase transition, placement decision, imbalance trigger and
//! flash-barrier scheduling decision, in the exact order the simulation
//! produced them. That makes traces both a debugging instrument and a
//! regression oracle (see `tests/golden_traces.rs` at the workspace root).
//!
//! Design rules:
//!
//! * **Zero cost when disabled.** Producers hold an `Option<SharedSink>`
//!   that defaults to `None`; the [`emit`] helper checks the option *before*
//!   constructing the event, so the disabled path is one branch and the
//!   simulation's numeric results are byte-identical with or without the
//!   layer compiled in.
//! * **Plain-data events.** [`TraceEvent`] carries only integers, floats and
//!   short strings — no references into simulator state — so sinks can
//!   serialize, buffer or drop events without lifetime coupling.
//! * **Deterministic rendering.** JSONL output goes through the workspace's
//!   deterministic `serde_json` (insertion-order maps, shortest round-trip
//!   floats), so equal event sequences produce equal bytes.
//!
//! In the node simulation the taps hang off fixed points of the shared
//! data-path pipeline (`nvhsm-core`'s `node::datapath`, DESIGN.md §12) —
//! chiefly the completion/accounting stage — so a trace line's position
//! identifies the stage that emitted it.

mod event;
mod metrics;
mod sink;

pub use event::{FaultKind, MigrationPhase, TraceEvent};
pub use metrics::{
    CounterEntry, GaugeEntry, HistogramEntry, MetricKey, MetricsRegistry, MetricsReport,
    MetricsSnapshot, QuantileSummary,
};
pub use sink::{
    drain_ring, drain_ring_stats, emit, shared, to_jsonl, JsonlSink, NullSink, RingSink,
    SharedSink, TraceSink,
};
