//! Metrics registry: counters, gauges and latency histograms keyed by
//! metric name, device and node.
//!
//! The registry reuses [`nvhsm_sim::Histogram`] — the workspace's single
//! log-bucketed histogram with one definition of p50/p95/p99 — rather than
//! introducing a second quantile implementation. Keys live in `BTreeMap`s
//! so every snapshot and report iterates in a deterministic order.

use nvhsm_sim::Histogram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Registry key: metric name plus the (device, node) pair it describes.
///
/// Node-global metrics use an empty device label; single-node scenarios use
/// node 0.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetricKey {
    /// Metric name, e.g. `io_errors` or `latency_us`.
    pub name: String,
    /// Device kind label (`NVDIMM` / `SSD` / `HDD`) or `""` for node-level.
    pub device: String,
    /// Node id (0 for single-node scenarios).
    pub node: u32,
}

impl MetricKey {
    /// Builds a key; `device` may be empty for node-level metrics.
    pub fn new(name: &str, device: &str, node: u32) -> Self {
        MetricKey {
            name: name.to_string(),
            device: device.to_string(),
            node,
        }
    }
}

/// Counters, gauges and latency histograms for one simulation scenario.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

/// One histogram's quantile summary (all quantiles come from
/// [`Histogram::p50`]/[`Histogram::p95`]/[`Histogram::p99`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSummary {
    /// Metric name.
    pub name: String,
    /// Device kind label or `""`.
    pub device: String,
    /// Node id.
    pub node: u32,
    /// Sample count.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

/// Serializable full state of a registry; restoring it reproduces the
/// registry exactly (including histogram bucket counts).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(key, value)` pairs in key order.
    pub counters: Vec<CounterEntry>,
    /// `(key, value)` pairs in key order.
    pub gauges: Vec<GaugeEntry>,
    /// `(key, histogram)` pairs in key order.
    pub histograms: Vec<HistogramEntry>,
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Registry key.
    pub key: MetricKey,
    /// Monotonic count.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Registry key.
    pub key: MetricKey,
    /// Last set value.
    pub value: f64,
}

/// One histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Registry key.
    pub key: MetricKey,
    /// Full histogram state.
    pub hist: Histogram,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to a monotonic counter, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, device: &str, node: u32, delta: u64) {
        *self
            .counters
            .entry(MetricKey::new(name, device, node))
            .or_insert(0) += delta;
    }

    /// Convenience for `counter_add(..., 1)`.
    pub fn counter_inc(&mut self, name: &str, device: &str, node: u32) {
        self.counter_add(name, device, node, 1);
    }

    /// Sets a gauge to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &str, device: &str, node: u32, value: f64) {
        self.gauges
            .insert(MetricKey::new(name, device, node), value);
    }

    /// Records one sample into a latency histogram, creating it on first
    /// use.
    pub fn observe(&mut self, name: &str, device: &str, node: u32, value: f64) {
        self.histograms
            .entry(MetricKey::new(name, device, node))
            .or_default()
            .add(value);
    }

    /// Current value of a counter (0 if absent).
    pub fn counter(&self, name: &str, device: &str, node: u32) -> u64 {
        self.counters
            .get(&MetricKey::new(name, device, node))
            .copied()
            .unwrap_or(0)
    }

    /// Current value of a gauge (`None` if never set).
    pub fn gauge(&self, name: &str, device: &str, node: u32) -> Option<f64> {
        self.gauges
            .get(&MetricKey::new(name, device, node))
            .copied()
    }

    /// The histogram behind a metric, if any samples were recorded.
    pub fn histogram(&self, name: &str, device: &str, node: u32) -> Option<&Histogram> {
        self.histograms.get(&MetricKey::new(name, device, node))
    }

    /// Merges another registry into this one (counters add, gauges take
    /// the other's value, histograms merge bucket-wise).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Quantile summaries of every histogram, in key order.
    pub fn summaries(&self) -> Vec<QuantileSummary> {
        self.histograms
            .iter()
            .map(|(k, h)| QuantileSummary {
                name: k.name.clone(),
                device: k.device.clone(),
                node: k.node,
                count: h.count(),
                mean: h.mean(),
                p50: h.p50(),
                p95: h.p95(),
                p99: h.p99(),
                max: h.max().unwrap_or(0.0),
            })
            .collect()
    }

    /// Full serializable state, in key order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| CounterEntry {
                    key: k.clone(),
                    value: *v,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| GaugeEntry {
                    key: k.clone(),
                    value: *v,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| HistogramEntry {
                    key: k.clone(),
                    hist: h.clone(),
                })
                .collect(),
        }
    }

    /// Rebuilds a registry from a snapshot.
    pub fn restore(snapshot: &MetricsSnapshot) -> Self {
        let mut reg = MetricsRegistry::new();
        for c in &snapshot.counters {
            reg.counters.insert(c.key.clone(), c.value);
        }
        for g in &snapshot.gauges {
            reg.gauges.insert(g.key.clone(), g.value);
        }
        for h in &snapshot.histograms {
            reg.histograms.insert(h.key.clone(), h.hist.clone());
        }
        reg
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Serializable report of a registry: raw counters and gauges plus
/// quantile summaries (not full buckets) for histograms. This is what
/// `--metrics` dumps next to the `--json` experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Counters in key order.
    pub counters: Vec<CounterEntry>,
    /// Gauges in key order.
    pub gauges: Vec<GaugeEntry>,
    /// Histogram quantile summaries in key order.
    pub histograms: Vec<QuantileSummary>,
}

impl MetricsRegistry {
    /// Compact report for human/JSON consumption.
    pub fn report(&self) -> MetricsReport {
        let snap = self.snapshot();
        MetricsReport {
            counters: snap.counters,
            gauges: snap.gauges,
            histograms: self.summaries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut r = MetricsRegistry::new();
        r.counter_inc("io_errors", "SSD", 0);
        r.counter_add("io_errors", "SSD", 0, 2);
        r.counter_inc("io_errors", "HDD", 0);
        assert_eq!(r.counter("io_errors", "SSD", 0), 3);
        assert_eq!(r.counter("io_errors", "HDD", 0), 1);
        assert_eq!(r.counter("io_errors", "NVDIMM", 0), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.gauge("imbalance", "", 0), None);
        r.gauge_set("imbalance", "", 0, 0.4);
        r.gauge_set("imbalance", "", 0, 0.7);
        assert_eq!(r.gauge("imbalance", "", 0), Some(0.7));
    }

    #[test]
    fn histograms_route_through_shared_quantiles() {
        let mut r = MetricsRegistry::new();
        for i in 1..=1000 {
            r.observe("latency_us", "SSD", 0, i as f64);
        }
        let h = r.histogram("latency_us", "SSD", 0).unwrap();
        assert_eq!(h.p99(), h.percentile(99.0));
        let s = &r.summaries()[0];
        assert_eq!(s.count, 1000);
        assert_eq!(s.p99, h.p99());
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut r = MetricsRegistry::new();
        r.counter_add("retries", "", 1, 5);
        r.gauge_set("health", "SSD", 1, 2.0);
        for v in [10.0, 200.0, 3000.0] {
            r.observe("latency_us", "HDD", 1, v);
        }
        let snap = r.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        let restored = MetricsRegistry::restore(&back);
        assert_eq!(restored.counter("retries", "", 1), 5);
        assert_eq!(restored.gauge("health", "SSD", 1), Some(2.0));
        let (a, b) = (
            r.histogram("latency_us", "HDD", 1).unwrap(),
            restored.histogram("latency_us", "HDD", 1).unwrap(),
        );
        assert_eq!(a.count(), b.count());
        assert_eq!(a.p99(), b.p99());
    }

    #[test]
    fn merge_combines_all_kinds() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.counter_add("ios", "SSD", 0, 2);
        b.counter_add("ios", "SSD", 0, 3);
        b.gauge_set("health", "SSD", 0, 1.0);
        a.observe("latency_us", "SSD", 0, 10.0);
        b.observe("latency_us", "SSD", 0, 1000.0);
        a.merge(&b);
        assert_eq!(a.counter("ios", "SSD", 0), 5);
        assert_eq!(a.gauge("health", "SSD", 0), Some(1.0));
        assert_eq!(a.histogram("latency_us", "SSD", 0).unwrap().count(), 2);
    }
}
