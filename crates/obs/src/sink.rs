//! Trace sinks: where emitted events go.
//!
//! Producers hold an `Option<SharedSink>`; [`emit`] checks it before the
//! event is even constructed, so an unattached producer pays one branch per
//! potential event and allocates nothing. Sinks are `Send` (behind a mutex)
//! because scenario-parallel grids move whole simulations across worker
//! threads; within one scenario the sink is only ever touched by that
//! scenario's thread, so the lock is uncontended.

use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Destination for trace events.
pub trait TraceSink: Send {
    /// Receives one event. Called in simulation order.
    fn record(&mut self, event: &TraceEvent);

    /// Flushes any buffered output. Default: no-op.
    fn flush_sink(&mut self) {}

    /// Downcast hook so callers can recover a concrete sink (e.g. drain a
    /// [`RingSink`] after a run) from a [`SharedSink`] trait object.
    fn as_any(&mut self) -> &mut dyn std::any::Any;
}

/// A sink shared between every producer of one simulation scenario.
pub type SharedSink = Arc<Mutex<dyn TraceSink>>;

/// Wraps a sink for sharing across the producers of one scenario.
pub fn shared<S: TraceSink + 'static>(sink: S) -> SharedSink {
    Arc::new(Mutex::new(sink))
}

/// Emits an event to an optional sink, building the event only if a sink
/// is attached. This is the zero-cost-when-disabled gate every producer
/// goes through.
#[inline]
pub fn emit<F: FnOnce() -> TraceEvent>(sink: &Option<SharedSink>, make: F) {
    if let Some(s) = sink {
        let event = make();
        s.lock().expect("trace sink poisoned").record(&event);
    }
}

/// Discards everything. Useful to measure tracing overhead without I/O.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &TraceEvent) {}

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Keeps the last `capacity` events in memory — a flight recorder for
/// tests and post-mortem inspection of long runs.
#[derive(Debug)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Events currently buffered, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Takes the buffered events out, oldest first.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event.clone());
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Drains the events out of a [`SharedSink`] that wraps a [`RingSink`].
///
/// # Panics
///
/// Panics if the sink is not a `RingSink`.
pub fn drain_ring(sink: &SharedSink) -> Vec<TraceEvent> {
    drain_ring_stats(sink).0
}

/// Like [`drain_ring`], but also returns how many events the ring evicted
/// — callers that cap trace memory can report the truncation instead of
/// silently presenting a partial trace as complete.
///
/// # Panics
///
/// Panics if the sink is not a `RingSink`.
pub fn drain_ring_stats(sink: &SharedSink) -> (Vec<TraceEvent>, u64) {
    let mut guard = sink.lock().expect("trace sink poisoned");
    let ring = guard
        .as_any()
        .downcast_mut::<RingSink>()
        .expect("sink is not a RingSink");
    let dropped = ring.dropped();
    (ring.take(), dropped)
}

/// Streams events as JSON Lines: one externally-tagged JSON object per
/// event, rendered by the workspace's deterministic serializer so equal
/// event sequences give byte-identical output.
pub struct JsonlSink<W: Write + Send> {
    out: W,
    lines: u64,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer. Callers that care about flush-on-drop should call
    /// [`TraceSink::flush_sink`] explicitly before dropping.
    pub fn new(out: W) -> Self {
        JsonlSink { out, lines: 0 }
    }

    /// Number of lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Consumes the sink and returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write + Send + 'static> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        let line = serde_json::to_string(event).expect("trace events always serialize");
        writeln!(self.out, "{line}").expect("trace sink write failed");
        self.lines += 1;
    }

    fn flush_sink(&mut self) {
        self.out.flush().expect("trace sink flush failed");
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Renders a slice of events to a JSONL string (used by golden tests and
/// the per-scenario trace collection in experiment grids).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("trace events always serialize"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultKind;

    fn ev(t: u64) -> TraceEvent {
        TraceEvent::IoFault {
            t,
            dev: "SSD".into(),
            kind: FaultKind::Transient,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut r = RingSink::new(2);
        for t in 0..5 {
            r.record(&ev(t));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        let got = r.take();
        assert_eq!(got, vec![ev(3), ev(4)]);
        assert!(r.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut s = JsonlSink::new(Vec::new());
        s.record(&ev(7));
        s.record(&ev(8));
        assert_eq!(s.lines(), 2);
        let text = String::from_utf8(s.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("{\"IoFault\":{\"t\":7,"));
    }

    #[test]
    fn jsonl_round_trips_through_serde() {
        let original = ev(42);
        let line = serde_json::to_string(&original).unwrap();
        let back: TraceEvent = serde_json::from_str(&line).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn emit_skips_event_construction_without_sink() {
        let mut built = false;
        emit(&None, || {
            built = true;
            ev(0)
        });
        assert!(!built, "event closure must not run with no sink attached");
    }

    #[test]
    fn emit_records_through_shared_sink() {
        let sink = shared(RingSink::new(8));
        let opt = Some(Arc::clone(&sink));
        emit(&opt, || ev(1));
        emit(&opt, || ev(2));
        assert_eq!(drain_ring(&sink), vec![ev(1), ev(2)]);
    }
}
