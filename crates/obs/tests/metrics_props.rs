//! Property tests for the metrics layer: histogram algebra (merge
//! associativity, quantile monotonicity, bucket-boundary resolution) and
//! registry snapshot/restore round-trips.

use nvhsm_obs::{MetricsRegistry, MetricsSnapshot};
use nvhsm_sim::Histogram;
use proptest::prelude::*;

fn hist_of(xs: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &x in xs {
        h.add(x);
    }
    h
}

/// The bucket-exact state of a histogram: count, quantiles and max are all
/// integer/bucket arithmetic, so equality is exact. The Welford mean is
/// checked separately with a floating tolerance (merge order perturbs the
/// last bits).
fn fingerprint(h: &Histogram) -> (u64, f64, f64, f64, Option<f64>) {
    (h.count(), h.p50(), h.p95(), h.p99(), h.max())
}

fn mean_close(a: &Histogram, b: &Histogram) -> bool {
    (a.mean() - b.mean()).abs() <= 1e-9 * (1.0 + a.mean().abs())
}

proptest! {
    /// Merging in either association order yields the same histogram:
    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn prop_histogram_merge_associative(
        xs in proptest::collection::vec(0.5f64..1e7, 0..120),
        ys in proptest::collection::vec(0.5f64..1e7, 0..120),
        zs in proptest::collection::vec(0.5f64..1e7, 0..120),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(fingerprint(&left), fingerprint(&right));
        prop_assert!(mean_close(&left, &right));
    }

    /// Merging two histograms matches adding all samples to one.
    #[test]
    fn prop_histogram_merge_equals_sequential(
        xs in proptest::collection::vec(0.5f64..1e7, 0..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let mut merged = hist_of(&xs[..split]);
        merged.merge(&hist_of(&xs[split..]));
        let whole = hist_of(&xs);
        prop_assert_eq!(fingerprint(&merged), fingerprint(&whole));
        prop_assert!(mean_close(&merged, &whole));
    }

    /// Quantiles are monotone in p for any sample set, and p50/p95/p99 come
    /// out ordered in the registry summary.
    #[test]
    fn prop_quantiles_monotone(
        xs in proptest::collection::vec(1.0f64..1e8, 1..250),
    ) {
        let mut r = MetricsRegistry::new();
        for &x in &xs {
            r.observe("latency_us", "SSD", 0, x);
        }
        let s = &r.summaries()[0];
        prop_assert!(s.p50 <= s.p95 && s.p95 <= s.p99, "{s:?}");
        let h = r.histogram("latency_us", "SSD", 0).unwrap();
        let mut last = 0.0;
        for p in [0.0, 5.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0] {
            let v = h.percentile(p);
            prop_assert!(v >= last, "p{p} gave {v} < {last}");
            last = v;
        }
    }

    /// A single sample sitting exactly on a log-bucket boundary
    /// (`10^(k/80)`, the 80-buckets-per-decade edge) reads back within the
    /// histogram's ~±1 bucket relative resolution from every quantile.
    #[test]
    fn prop_bucket_boundary_values_resolve(k in 0u32..560) {
        let value = 10f64.powf(k as f64 / 80.0);
        let mut h = Histogram::new();
        h.add(value);
        // One bucket spans a factor of 10^(1/80); boundary values may land
        // on either side of the edge, so allow 1.5 bucket widths of error.
        let tol = 10f64.powf(1.5 / 80.0);
        for p in [1.0, 50.0, 99.0] {
            let est = h.percentile(p);
            prop_assert!(
                est >= value / tol && est <= value * tol,
                "boundary 10^({k}/80) = {value} estimated as {est} at p{p}"
            );
        }
    }

    /// snapshot → JSON → restore reproduces every counter, gauge and
    /// histogram fingerprint.
    #[test]
    fn prop_registry_snapshot_restore_round_trip(
        counters in proptest::collection::vec((0u32..4, 0u32..3, 1u64..1000), 0..12),
        gauges in proptest::collection::vec((0u32..4, 0u32..3, -1e6f64..1e6), 0..12),
        samples in proptest::collection::vec((0u32..2, 1.0f64..1e6), 0..60),
    ) {
        const NAMES: [&str; 4] = ["io_errors", "retries", "mirror_fallbacks", "imbalance"];
        const DEVICES: [&str; 3] = ["NVDIMM", "SSD", "HDD"];
        let mut r = MetricsRegistry::new();
        for &(n, d, v) in &counters {
            r.counter_add(NAMES[n as usize], DEVICES[d as usize], d, v);
        }
        for &(n, d, v) in &gauges {
            r.gauge_set(NAMES[n as usize], DEVICES[d as usize], d, v);
        }
        for &(d, v) in &samples {
            r.observe("latency_us", DEVICES[d as usize], 0, v);
        }

        let text = serde_json::to_string(&r.snapshot()).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        let restored = MetricsRegistry::restore(&back);

        for &(n, d, _) in &counters {
            prop_assert_eq!(
                restored.counter(NAMES[n as usize], DEVICES[d as usize], d),
                r.counter(NAMES[n as usize], DEVICES[d as usize], d)
            );
        }
        for &(n, d, _) in &gauges {
            prop_assert_eq!(
                restored.gauge(NAMES[n as usize], DEVICES[d as usize], d),
                r.gauge(NAMES[n as usize], DEVICES[d as usize], d)
            );
        }
        for dev in DEVICES {
            let (a, b) = (
                r.histogram("latency_us", dev, 0),
                restored.histogram("latency_us", dev, 0),
            );
            match (a, b) {
                (Some(a), Some(b)) => prop_assert_eq!(fingerprint(a), fingerprint(b)),
                (None, None) => {}
                _ => prop_assert!(false, "histogram presence diverged for {}", dev),
            }
        }
        // The report built from the restored registry is byte-identical.
        prop_assert_eq!(
            serde_json::to_string(&restored.report()).unwrap(),
            serde_json::to_string(&r.report()).unwrap()
        );
    }
}
