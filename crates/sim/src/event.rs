//! Deterministic time-ordered event queue.
//!
//! The queue is a binary heap keyed on `(time, sequence)` so that events
//! scheduled for the same instant are delivered in insertion order. This
//! determinism matters: every experiment in the workspace must be exactly
//! reproducible from its seed.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A time-ordered queue of simulation events.
///
/// Events popped from the queue come out in non-decreasing time order and,
/// within one timestamp, in FIFO order of insertion.
///
/// # Examples
///
/// ```
/// use nvhsm_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(10), 'b');
/// q.push(SimTime::from_ns(5), 'a');
/// q.push(SimTime::from_ns(10), 'c');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// A reference to the earliest pending event, if any.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.peek().map(|e| (e.time, &e.event))
    }

    /// Removes and returns the earliest event only if it is due at or before
    /// `now`.
    ///
    /// Single root access: the due check and the removal share one
    /// `peek_mut`, instead of a peek followed by an independent pop.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        let entry = self.heap.peek_mut()?;
        if entry.time <= now {
            let e = std::collections::binary_heap::PeekMut::pop(entry);
            Some((e.time, e.event))
        } else {
            None
        }
    }

    /// Reserves capacity for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (t, e) in iter {
            self.push(t, e);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_ns(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_ns(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_ns(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_one_timestamp() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), 'x');
        assert!(q.pop_due(SimTime::from_ns(9)).is_none());
        assert_eq!(
            q.pop_due(SimTime::from_ns(10)),
            Some((SimTime::from_ns(10), 'x'))
        );
        assert!(q.pop_due(SimTime::MAX).is_none());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None);
        q.push(SimTime::from_ns(4), "e");
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek(), Some((SimTime::from_ns(4), &"e")));
        assert_eq!(q.next_time(), Some(SimTime::from_ns(4)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn collects_from_iterator() {
        let q: EventQueue<u32> = vec![(SimTime::from_ns(2), 2), (SimTime::from_ns(1), 1)]
            .into_iter()
            .collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_time(), Some(SimTime::from_ns(1)));
    }

    proptest! {
        /// Popped times are monotone non-decreasing regardless of push order,
        /// and same-time events keep their insertion order.
        #[test]
        fn prop_monotone_and_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_ns(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, id)) = q.pop() {
                if let Some((lt, lid)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(id > lid);
                    }
                }
                last = Some((t, id));
            }
        }

        /// The queue returns exactly the multiset of events pushed.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0u64..50, 0..100)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.push(SimTime::from_ns(t), t);
            }
            let mut popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            let mut expect = times.clone();
            popped.sort_unstable();
            expect.sort_unstable();
            prop_assert_eq!(popped, expect);
        }
    }
}
