//! The original binary-heap event queue, kept as the ordering oracle.
//!
//! [`HeapEventQueue`] is the implementation [`EventQueue`](super::EventQueue)
//! replaced. It stays in the tree for two reasons: the property tests drive
//! both queues with identical operation sequences and assert identical
//! output streams, and the `event_queue_*_heap` benches keep the before
//! side of the before/after pair honest across future changes.

use super::Entry;
use crate::time::SimTime;
use std::collections::BinaryHeap;

/// A time-ordered queue of simulation events backed by a binary heap.
///
/// Same contract as [`EventQueue`](super::EventQueue): non-decreasing time
/// order, FIFO within one timestamp.
///
/// # Examples
///
/// ```
/// use nvhsm_sim::{HeapEventQueue, SimTime};
///
/// let mut q = HeapEventQueue::new();
/// q.push(SimTime::from_ns(10), 'b');
/// q.push(SimTime::from_ns(5), 'a');
/// q.push(SimTime::from_ns(10), 'c');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        HeapEventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// A reference to the earliest pending event, if any.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.peek().map(|e| (e.time, &e.event))
    }

    /// Removes and returns the earliest event only if it is due at or before
    /// `now`.
    ///
    /// Single root access: the due check and the removal share one
    /// `peek_mut`, instead of a peek followed by an independent pop.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        let entry = self.heap.peek_mut()?;
        if entry.time <= now {
            let e = std::collections::binary_heap::PeekMut::pop(entry);
            Some((e.time, e.event))
        } else {
            None
        }
    }

    /// Removes every event due at or before `now`, appending them to `out`
    /// in pop order, and returns how many were drained. One sift-down per
    /// event — this is the baseline `drain_due` the calendar queue beats.
    pub fn drain_due(&mut self, now: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        let mut n = 0usize;
        while let Some(e) = self.pop_due(now) {
            out.push(e);
            n += 1;
        }
        n
    }

    /// Reserves capacity for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events. The sequence counter is kept, matching
    /// [`EventQueue::clear`](super::EventQueue::clear).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Extend<(SimTime, E)> for HeapEventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        let iter = iter.into_iter();
        self.heap.reserve(iter.size_hint().0);
        for (t, e) in iter {
            self.push(t, e);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for HeapEventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = HeapEventQueue::new();
        q.extend(iter);
        q
    }
}
