//! Deterministic time-ordered event queues.
//!
//! Two implementations share one contract — events come out in
//! non-decreasing time order and, within one timestamp, in FIFO order of
//! insertion (the `(time, seq)` total order):
//!
//! * [`EventQueue`] — a hierarchical bucketed calendar queue (a 256-slot
//!   time wheel with a binary-heap overflow level). This is the queue every
//!   simulator uses: pops are O(1) amortized because the wheel turns
//!   near-term events into array traffic, and [`EventQueue::drain_due`]
//!   hands whole same-timestamp batches out in one call. Wheel entries
//!   live in one arena (`pool`) threaded by intrusive per-slot lists with
//!   a free list, so steady-state pushes and wheel turns are allocation
//!   free — no per-slot buffers to malloc.
//! * [`HeapEventQueue`] — the original `BinaryHeap` implementation, kept as
//!   the ordering oracle for the equivalence property tests and as the
//!   before-side of the `event_queue_*_heap` benches.
//!
//! The determinism matters: every experiment in the workspace must be
//! exactly reproducible from its seed, so the two queues are required (and
//! property-tested) to produce byte-identical event streams for identical
//! push/pop sequences.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

mod heap;
#[cfg(test)]
mod tests;

pub use heap::HeapEventQueue;

/// Wheel slots per rotation. With [`SHIFT`]-bit buckets the wheel spans
/// `SLOTS << SHIFT` ns (~1.05 ms) before events spill to the overflow heap.
const SLOTS: usize = 256;
const SLOT_MASK: usize = SLOTS - 1;
/// log2 of the bucket width: 4096 ns per slot. Chosen so that one
/// management sub-epoch's worth of I/O events (device service times are
/// single-digit µs to ms) lands inside one wheel rotation.
const SHIFT: u32 = 12;
/// Null arena index, terminating both the per-slot lists and the free list.
const NIL: u32 = u32::MAX;

/// Absolute bucket index of a timestamp.
#[inline]
fn bucket(time: SimTime) -> u64 {
    time.as_ns() >> SHIFT
}

/// One scheduled event with its insertion sequence number.
#[derive(Debug, Clone)]
pub(crate) struct Entry<E> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One arena node: a wheel entry threaded onto its slot's intrusive list.
/// `event` is `Some` while the node is live and `None` once the node has
/// been drained and parked on the free list (`next` then threads the free
/// list instead of a slot list).
#[derive(Debug, Clone)]
struct Node<E> {
    time: SimTime,
    seq: u64,
    next: u32,
    event: Option<E>,
}

/// A time-ordered queue of simulation events.
///
/// Events popped from the queue come out in non-decreasing time order and,
/// within one timestamp, in FIFO order of insertion.
///
/// Internally a two-level calendar queue: a 256-slot time wheel of 4096 ns
/// buckets holds everything within ~1.05 ms of the earliest pending event,
/// and a binary-heap overflow level holds the far future. The earliest
/// bucket's entries sit in a dedicated sorted buffer (`cur`), so
/// [`EventQueue::peek`] and [`EventQueue::next_time`] are O(1) `&self`
/// reads; every other wheel entry lives in one shared arena threaded by
/// per-slot singly-linked lists, so pushing never allocates per slot.
///
/// # Examples
///
/// ```
/// use nvhsm_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(10), 'b');
/// q.push(SimTime::from_ns(5), 'a');
/// q.push(SimTime::from_ns(10), 'c');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Head arena index per wheel slot ([`NIL`] = empty). Empty until the
    /// first push (keeps `new()` allocation free); exactly [`SLOTS`]
    /// entries afterwards.
    heads: Vec<u32>,
    /// Occupancy bitmap over `heads`: bit i set iff slot i has a list.
    occ: [u64; 4],
    /// Absolute bucket index of the current slot — the bucket whose
    /// entries are staged in `cur`. The current slot never owns a list.
    base_k: u64,
    /// The current bucket's entries, sorted descending by `(time, seq)` so
    /// the earliest pending event is `cur.last()`. Invariant: non-empty
    /// exactly when the queue is non-empty.
    cur: Vec<Entry<E>>,
    /// Arena backing the per-slot lists. Drained nodes are recycled
    /// through `free`, so the queue reaches a steady state where pushes
    /// and wheel turns perform no allocation at all.
    pool: Vec<Node<E>>,
    /// Head of the free-node list through the arena, [`NIL`] if none.
    free: u32,
    /// Conservative upper bound on the largest bucket of any arena entry.
    /// Lets [`EventQueue::rebase_to`] skip its eviction walk when nothing
    /// can lie past the new horizon (the overwhelmingly common case).
    wheel_max_k: u64,
    /// Overflow level: entries whose bucket lies at or past
    /// `base_k + SLOTS`. Same inverted ordering as [`HeapEventQueue`].
    far: BinaryHeap<Entry<E>>,
    len: usize,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heads: Vec::new(),
            occ: [0; 4],
            base_k: 0,
            cur: Vec::new(),
            pool: Vec::new(),
            free: NIL,
            wheel_max_k: 0,
            far: BinaryHeap::new(),
            len: 0,
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events. The wheel
    /// is allocated eagerly, and `capacity` sizes both the arena (where
    /// near-term events land) and the overflow level (where bulk schedules
    /// of far-future events — e.g. a whole arrival trace — land).
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = EventQueue::new();
        q.ensure_slots();
        q.pool.reserve(capacity);
        q.far.reserve(capacity);
        q
    }

    #[inline]
    fn ensure_slots(&mut self) {
        if self.heads.is_empty() {
            self.heads.resize(SLOTS, NIL);
        }
    }

    #[inline]
    fn occ_set(&mut self, idx: usize) {
        self.occ[idx >> 6] |= 1u64 << (idx & 63);
    }

    #[inline]
    fn occ_clear(&mut self, idx: usize) {
        self.occ[idx >> 6] &= !(1u64 << (idx & 63));
    }

    /// Links `e` onto the list of its slot, recycling a free node if one
    /// exists. Requires `base_k < bucket(e.time) < base_k + SLOTS`.
    #[inline]
    fn link(&mut self, k: u64, e: Entry<E>) {
        let idx = k as usize & SLOT_MASK;
        let next = self.heads[idx];
        let i = if self.free != NIL {
            let i = self.free;
            let n = &mut self.pool[i as usize];
            self.free = n.next;
            n.time = e.time;
            n.seq = e.seq;
            n.next = next;
            n.event = Some(e.event);
            i
        } else {
            let i = self.pool.len();
            assert!(i < NIL as usize, "event queue wheel overflow");
            self.pool.push(Node {
                time: e.time,
                seq: e.seq,
                next,
                event: Some(e.event),
            });
            i as u32
        };
        self.heads[idx] = i;
        self.occ_set(idx);
        if k > self.wheel_max_k {
            self.wheel_max_k = k;
        }
    }

    /// Unlinks slot `idx`'s whole list into `cur` (unsorted), parking the
    /// nodes on the free list.
    fn collect_slot(&mut self, idx: usize) {
        let mut i = self.heads[idx];
        self.heads[idx] = NIL;
        self.occ_clear(idx);
        while i != NIL {
            let n = &mut self.pool[i as usize];
            let nx = n.next;
            let event = n.event.take().expect("live node on a slot list");
            self.cur.push(Entry {
                time: n.time,
                seq: n.seq,
                event,
            });
            n.next = self.free;
            self.free = i;
            i = nx;
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.insert(Entry { time, seq, event });
    }

    fn insert(&mut self, e: Entry<E>) {
        let k = bucket(e.time);
        if self.len == 0 {
            // Empty queue: re-anchor the wheel at the pushed bucket.
            self.ensure_slots();
            self.base_k = k;
            self.wheel_max_k = k;
            self.cur.push(e);
            self.len = 1;
            return;
        }
        self.len += 1;
        if k < self.base_k {
            // The push lands before the wheel's origin: move the origin
            // back. Rare in simulator use (origins only move back when a
            // push is earlier than every pending event).
            self.rebase_to(k);
        }
        if k == self.base_k {
            // The current bucket stays sorted descending by (time, seq) so
            // peek/pop stay O(1): binary-search the insertion point.
            let key = (e.time, e.seq);
            let pos = self.cur.partition_point(|x| (x.time, x.seq) > key);
            self.cur.insert(pos, e);
        } else if k < self.base_k + SLOTS as u64 {
            self.link(k, e);
        } else {
            self.far.push(e);
        }
    }

    /// Moves the wheel's origin back to bucket `k < base_k`.
    ///
    /// A bucket's ring index `b & SLOT_MASK` does not depend on the
    /// origin, so arena entries whose bucket stays inside the new horizon
    /// `k + SLOTS` are already in the right slot and need no work at all.
    /// Only two fixups remain: entries at or past the new horizon must
    /// spill to the overflow level (skipped entirely unless `wheel_max_k`
    /// says one might exist), and the old current bucket's staged entries
    /// must return to the wheel (or the overflow) since they are no longer
    /// current. Overflow entries stay put — the horizon only shrank.
    fn rebase_to(&mut self, k: u64) {
        let horizon = k + SLOTS as u64;
        if self.wheel_max_k >= horizon {
            // Some list entry may now lie past the horizon: walk the
            // occupied slots and evict those entries to the overflow heap.
            // This also guarantees the new current slot's list is empty —
            // any bucket colliding with `k`'s ring index is `k + 256m`,
            // which is past the horizon.
            for idx in 0..SLOTS {
                let mut i = self.heads[idx];
                if i == NIL {
                    continue;
                }
                self.heads[idx] = NIL;
                self.occ_clear(idx);
                let mut keep = NIL;
                while i != NIL {
                    let n = &mut self.pool[i as usize];
                    let nx = n.next;
                    if bucket(n.time) >= horizon {
                        let event = n.event.take().expect("live node on a slot list");
                        let entry = Entry {
                            time: n.time,
                            seq: n.seq,
                            event,
                        };
                        n.next = self.free;
                        self.free = i;
                        self.far.push(entry);
                    } else {
                        n.next = keep;
                        keep = i;
                    }
                    i = nx;
                }
                if keep != NIL {
                    self.heads[idx] = keep;
                    self.occ_set(idx);
                }
            }
            self.wheel_max_k = horizon - 1;
        }
        self.base_k = k;
        // The old current bucket is no longer current: its staged entries
        // go back onto the wheel (their bucket is strictly between the new
        // origin and, possibly, past the horizon).
        let mut staged = std::mem::take(&mut self.cur);
        for e in staged.drain(..) {
            let ek = bucket(e.time);
            debug_assert!(ek > k, "rebase target must precede all wheel entries");
            if ek < horizon {
                self.link(ek, e);
            } else {
                self.far.push(e);
            }
        }
        // Hand the buffer back so the staging area keeps its capacity.
        self.cur = staged;
        // `cur` is now empty and the new current slot has no list, ready
        // for the push that triggered this.
    }

    /// Ring distance from the current slot to the next occupied slot, if
    /// any other slot is occupied.
    fn next_occupied_distance(&self) -> Option<u64> {
        let cur = self.base_k as usize & SLOT_MASK;
        let w0 = cur >> 6;
        let bit = cur & 63;
        // Bits strictly above `cur` within its own word.
        let above = self.occ[w0] & !(((1u64 << bit) - 1) | (1u64 << bit));
        if above != 0 {
            let idx = (w0 << 6) + above.trailing_zeros() as usize;
            return Some((idx - cur) as u64);
        }
        for step in 1..=4usize {
            let w = (w0 + step) & 3;
            let mut m = self.occ[w];
            if step == 4 {
                // Wrapped back to the starting word: only bits at or below
                // `cur` remain unexamined (the `cur` bit itself is clear —
                // the current slot never owns a list).
                m &= ((1u64 << bit) - 1) | (1u64 << bit);
            }
            if m != 0 {
                let idx = (w << 6) + m.trailing_zeros() as usize;
                return Some(((idx + SLOTS - cur) & SLOT_MASK) as u64);
            }
        }
        None
    }

    /// Turns the wheel to the next non-empty bucket after the current one
    /// emptied, pulling newly-in-horizon overflow entries into the wheel
    /// and staging + sorting the new current bucket. Requires `len > 0`
    /// and `cur` empty.
    fn advance(&mut self) {
        debug_assert!(self.cur.is_empty());
        match self.next_occupied_distance() {
            Some(d) => self.base_k += d,
            None => {
                // Wheel empty: jump straight to the earliest far bucket.
                let e = self.far.peek().expect("len > 0 with an empty wheel");
                self.base_k = bucket(e.time);
            }
        }
        // Every slot between the old and new origin was empty, so pulled
        // entries (whose buckets lie past the old horizon) can never mix
        // into a slot still holding older entries.
        let horizon = self.base_k + SLOTS as u64;
        while self.far.peek().is_some_and(|e| bucket(e.time) < horizon) {
            let e = self.far.pop().expect("peeked entry");
            let ek = bucket(e.time);
            if ek == self.base_k {
                self.cur.push(e);
            } else {
                self.link(ek, e);
            }
        }
        self.collect_slot(self.base_k as usize & SLOT_MASK);
        self.cur
            .sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
        debug_assert!(!self.cur.is_empty(), "advance landed on an empty bucket");
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // `cur` is non-empty exactly when the queue is, so no len check.
        let e = self.cur.pop()?;
        self.len -= 1;
        if self.cur.is_empty() && self.len > 0 {
            self.advance();
        }
        Some((e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.cur.last().map(|e| e.time)
    }

    /// A reference to the earliest pending event, if any.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.cur.last().map(|e| (e.time, &e.event))
    }

    /// Removes and returns the earliest event only if it is due at or
    /// before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if self.cur.last().is_some_and(|e| e.time <= now) {
            self.pop()
        } else {
            None
        }
    }

    /// Removes every event due at or before `now`, appending them to `out`
    /// in pop order, and returns how many were drained.
    ///
    /// Equivalent to `while let Some(e) = self.pop_due(now) { out.push(e) }`,
    /// but drains whole calendar buckets in bulk: a simulator waking up at
    /// `now` gets its entire same-timestamp batch in one call instead of
    /// paying one ordered removal per event.
    pub fn drain_due(&mut self, now: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        let mut n = 0usize;
        // The staged bucket is sorted descending, so its maximum is at the
        // front: if even that is due, the whole bucket drains in one move.
        while self.cur.first().is_some_and(|e| e.time <= now) {
            let taken = self.cur.len();
            n += taken;
            self.len -= taken;
            out.extend(self.cur.drain(..).rev().map(|e| (e.time, e.event)));
            if self.len == 0 {
                return n;
            }
            self.advance();
        }
        // Only a tail of the staged bucket (if anything) is due.
        while self.cur.last().is_some_and(|e| e.time <= now) {
            let e = self.cur.pop().expect("checked non-empty");
            self.len -= 1;
            n += 1;
            out.push((e.time, e.event));
        }
        n
    }

    /// Reserves capacity for at least `additional` more events in both
    /// wheel levels (the arena and the overflow heap), and allocates the
    /// wheel if this queue has never held one.
    pub fn reserve(&mut self, additional: usize) {
        self.ensure_slots();
        self.pool.reserve(additional);
        self.far.reserve(additional);
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending events.
    ///
    /// The sequence counter is deliberately **not** reset: `(time, seq)`
    /// stays a total order over the queue's whole lifetime, so events
    /// pushed after a `clear()` can never tie-break ahead of anything that
    /// existed before it. Resetting would be observable — a same-timestamp
    /// interleaving of pre- and post-clear pushes is impossible with a
    /// monotone counter and possible without one.
    pub fn clear(&mut self) {
        self.heads.iter_mut().for_each(|h| *h = NIL);
        self.occ = [0; 4];
        self.cur.clear();
        self.pool.clear();
        self.free = NIL;
        self.wheel_max_k = 0;
        self.far.clear();
        self.len = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        let iter = iter.into_iter();
        // Bulk schedules mostly land in the overflow level; reserving up
        // front keeps the heap from regrowing once per push.
        self.reserve(iter.size_hint().0);
        for (t, e) in iter {
            self.push(t, e);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}
