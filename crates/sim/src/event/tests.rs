use super::*;
use crate::time::SimDuration;
use proptest::prelude::*;

#[test]
fn pops_in_time_order() {
    let mut q = EventQueue::new();
    q.push(SimTime::from_ns(30), 3);
    q.push(SimTime::from_ns(10), 1);
    q.push(SimTime::from_ns(20), 2);
    assert_eq!(q.pop(), Some((SimTime::from_ns(10), 1)));
    assert_eq!(q.pop(), Some((SimTime::from_ns(20), 2)));
    assert_eq!(q.pop(), Some((SimTime::from_ns(30), 3)));
    assert_eq!(q.pop(), None);
}

#[test]
fn fifo_within_one_timestamp() {
    let mut q = EventQueue::new();
    for i in 0..100 {
        q.push(SimTime::from_ns(7), i);
    }
    for i in 0..100 {
        assert_eq!(q.pop().unwrap().1, i);
    }
}

#[test]
fn pop_due_respects_now() {
    let mut q = EventQueue::new();
    q.push(SimTime::from_ns(10), 'x');
    assert!(q.pop_due(SimTime::from_ns(9)).is_none());
    assert_eq!(
        q.pop_due(SimTime::from_ns(10)),
        Some((SimTime::from_ns(10), 'x'))
    );
    assert!(q.pop_due(SimTime::MAX).is_none());
}

#[test]
fn peek_and_len() {
    let mut q = EventQueue::new();
    assert!(q.is_empty());
    assert_eq!(q.next_time(), None);
    q.push(SimTime::from_ns(4), "e");
    assert_eq!(q.len(), 1);
    assert_eq!(q.peek(), Some((SimTime::from_ns(4), &"e")));
    assert_eq!(q.next_time(), Some(SimTime::from_ns(4)));
    q.clear();
    assert!(q.is_empty());
}

#[test]
fn collects_from_iterator() {
    let q: EventQueue<u32> = vec![(SimTime::from_ns(2), 2), (SimTime::from_ns(1), 1)]
        .into_iter()
        .collect();
    assert_eq!(q.len(), 2);
    assert_eq!(q.next_time(), Some(SimTime::from_ns(1)));
}

/// `clear()` keeps the monotone sequence counter (documented decision):
/// events pushed after a clear must never tie-break ahead of where they
/// would have landed relative to pre-clear pushes at the same timestamp.
#[test]
fn clear_keeps_seq_monotone() {
    let mut q = EventQueue::new();
    q.push(SimTime::from_ns(5), 'a');
    q.push(SimTime::from_ns(5), 'b');
    q.clear();
    assert!(q.is_empty());
    // Post-clear pushes at the same timestamp still pop in push order —
    // trivially true here, but with a reset counter a later interleaving
    // with surviving references to pre-clear seq values could reorder.
    q.push(SimTime::from_ns(5), 'c');
    q.push(SimTime::from_ns(5), 'd');
    assert_eq!(q.pop(), Some((SimTime::from_ns(5), 'c')));
    assert_eq!(q.pop(), Some((SimTime::from_ns(5), 'd')));
    // The counter itself must have kept counting across the clear.
    assert_eq!(q.seq, 4);
}

/// Exercises the far level and the wheel advance across many rotations:
/// events span well past the 256-slot horizon.
#[test]
fn far_future_events_pop_in_order() {
    let mut q = EventQueue::new();
    let step = SimDuration::from_us(100); // ~24 buckets apart, > horizon in aggregate
    let mut t = SimTime::ZERO;
    let mut expect = Vec::new();
    for i in 0..500u32 {
        // Interleave near and far pushes.
        let at = if i % 3 == 0 { t } else { t + step * 37 };
        q.push(at, i);
        expect.push((at, i));
        t += step;
    }
    expect.sort_by_key(|&(at, i)| (at, i)); // push index == seq order here
    let got: Vec<(SimTime, u32)> = std::iter::from_fn(|| q.pop()).collect();
    assert_eq!(got, expect);
}

/// A push earlier than everything pending (wheel rebase path).
#[test]
fn earlier_push_rebases_wheel() {
    let mut q = EventQueue::new();
    q.push(SimTime::from_ns(50_000_000), 'z');
    q.push(SimTime::from_ns(40_000_000), 'y');
    q.push(SimTime::from_ns(100), 'a');
    q.push(SimTime::from_ns(100), 'b');
    assert_eq!(q.next_time(), Some(SimTime::from_ns(100)));
    assert_eq!(q.pop(), Some((SimTime::from_ns(100), 'a')));
    assert_eq!(q.pop(), Some((SimTime::from_ns(100), 'b')));
    assert_eq!(q.pop(), Some((SimTime::from_ns(40_000_000), 'y')));
    assert_eq!(q.pop(), Some((SimTime::from_ns(50_000_000), 'z')));
    assert_eq!(q.pop(), None);
}

#[test]
fn drain_due_batches_whole_timestamps() {
    let mut q = EventQueue::new();
    for i in 0..10 {
        q.push(SimTime::from_ns(100), i);
    }
    for i in 10..15 {
        q.push(SimTime::from_ns(200), i);
    }
    let mut out = Vec::new();
    let n = q.drain_due(SimTime::from_ns(100), &mut out);
    assert_eq!(n, 10);
    assert_eq!(
        out,
        (0..10)
            .map(|i| (SimTime::from_ns(100), i))
            .collect::<Vec<_>>()
    );
    assert_eq!(q.len(), 5);
    out.clear();
    assert_eq!(q.drain_due(SimTime::from_ns(199), &mut out), 0);
    assert_eq!(q.drain_due(SimTime::from_ns(200), &mut out), 5);
    assert!(q.is_empty());
}

/// One scripted operation for the equivalence harness.
#[derive(Debug, Clone)]
enum Op {
    Push(u64),
    Pop,
    PopDue(u64),
    DrainDue(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Pushes weighted 3:1:1:1 against the consuming operations so the
    // queues hold substantial state when pops and drains hit them.
    (0u8..6, 0u64..2_000_000).prop_map(|(kind, t)| match kind {
        0..=2 => Op::Push(t),
        3 => Op::Pop,
        4 => Op::PopDue(t),
        _ => Op::DrainDue(t),
    })
}

proptest! {
    /// Popped times are monotone non-decreasing regardless of push order,
    /// and same-time events keep their insertion order.
    #[test]
    fn prop_monotone_and_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ns(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, id)) = q.pop() {
            if let Some((lt, lid)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(id > lid);
                }
            }
            last = Some((t, id));
        }
    }

    /// The queue returns exactly the multiset of events pushed.
    #[test]
    fn prop_conservation(times in proptest::collection::vec(0u64..50, 0..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(SimTime::from_ns(t), t);
        }
        let mut popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let mut expect = times.clone();
        popped.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(popped, expect);
    }

    /// Ordering-oracle equivalence: the calendar queue and the binary-heap
    /// queue, driven by the same random sequence of push/pop/pop_due/
    /// drain_due operations, produce identical output streams at every
    /// step (and agree on next_time/len throughout).
    #[test]
    fn prop_equivalent_to_heap_oracle(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut cal: EventQueue<u32> = EventQueue::new();
        let mut oracle: HeapEventQueue<u32> = HeapEventQueue::new();
        let mut id = 0u32;
        for op in &ops {
            match *op {
                Op::Push(t) => {
                    cal.push(SimTime::from_ns(t), id);
                    oracle.push(SimTime::from_ns(t), id);
                    id += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(cal.pop(), oracle.pop());
                }
                Op::PopDue(now) => {
                    let now = SimTime::from_ns(now);
                    prop_assert_eq!(cal.pop_due(now), oracle.pop_due(now));
                }
                Op::DrainDue(now) => {
                    let now = SimTime::from_ns(now);
                    let (mut a, mut b) = (Vec::new(), Vec::new());
                    let na = cal.drain_due(now, &mut a);
                    let nb = oracle.drain_due(now, &mut b);
                    prop_assert_eq!(na, nb);
                    prop_assert_eq!(a, b);
                }
            }
            prop_assert_eq!(cal.next_time(), oracle.next_time());
            prop_assert_eq!(cal.len(), oracle.len());
        }
        // Drain whatever remains and compare the tails.
        let a: Vec<(SimTime, u32)> = std::iter::from_fn(|| cal.pop()).collect();
        let b: Vec<(SimTime, u32)> = std::iter::from_fn(|| oracle.pop()).collect();
        prop_assert_eq!(a, b);
    }

    /// Clustered timestamps (many events per bucket, the simulator's
    /// actual shape) through the same oracle check.
    #[test]
    fn prop_equivalent_clustered(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut cal: EventQueue<u32> = EventQueue::new();
        let mut oracle: HeapEventQueue<u32> = HeapEventQueue::new();
        let mut id = 0u32;
        for op in &ops {
            // Quantize times onto a handful of instants so ties dominate.
            match *op {
                Op::Push(t) => {
                    let t = SimTime::from_ns((t % 7) * 50_000);
                    cal.push(t, id);
                    oracle.push(t, id);
                    id += 1;
                }
                Op::Pop => { prop_assert_eq!(cal.pop(), oracle.pop()); }
                Op::PopDue(now) => {
                    let now = SimTime::from_ns((now % 7) * 50_000);
                    prop_assert_eq!(cal.pop_due(now), oracle.pop_due(now));
                }
                Op::DrainDue(now) => {
                    let now = SimTime::from_ns((now % 7) * 50_000);
                    let (mut a, mut b) = (Vec::new(), Vec::new());
                    prop_assert_eq!(cal.drain_due(now, &mut a), oracle.drain_due(now, &mut b));
                    prop_assert_eq!(a, b);
                }
            }
            prop_assert_eq!(cal.next_time(), oracle.next_time());
        }
        let a: Vec<(SimTime, u32)> = std::iter::from_fn(|| cal.pop()).collect();
        let b: Vec<(SimTime, u32)> = std::iter::from_fn(|| oracle.pop()).collect();
        prop_assert_eq!(a, b);
    }
}
