//! Discrete-event simulation kernel shared by every simulator in the
//! `nvdimm-hsm` workspace.
//!
//! This crate provides the four primitives that the DRAM, flash, cache and
//! storage-management simulators are built on:
//!
//! * [`SimTime`] / [`SimDuration`] — an integer-nanosecond time base with
//!   saturating arithmetic, so every component in the stack agrees on what
//!   "now" means.
//! * [`EventQueue`] — a deterministic time-ordered calendar queue (FIFO
//!   among events that share a timestamp), with batch drain of everything
//!   due at a wake-up; [`HeapEventQueue`] is the binary-heap reference
//!   implementation it is property-tested against.
//! * [`SimRng`] — a small, seedable, `SplitMix64`-based random number
//!   generator plus the distribution helpers the workload generators need
//!   (exponential inter-arrivals, Zipfian skew, Bernoulli mixes).
//! * [`stats`] — streaming statistics (Welford mean/variance, log-scale
//!   latency histograms with percentile queries, windowed time series).
//! * [`parallel`] — deterministic scenario-parallel execution: fans
//!   independent scenario closures across cores and returns results in
//!   stable input order, so merged outputs are byte-identical to serial
//!   runs (worker count via `--jobs`/`NVHSM_JOBS`).
//!
//! # Examples
//!
//! ```
//! use nvhsm_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_us(3), "late");
//! q.push(SimTime::ZERO + SimDuration::from_us(1), "early");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "early");
//! assert_eq!(t, SimTime::from_ns(1_000));
//! ```

pub mod event;
pub mod parallel;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{EventQueue, HeapEventQueue};
pub use rng::SimRng;
pub use stats::{Histogram, OnlineStats, TimeSeries};
pub use time::{SimDuration, SimTime};
