//! Deterministic scenario-parallel execution.
//!
//! Every paper artifact in this workspace is a grid of *independent*
//! simulations — policy × workload mix × seed. [`run_grid`] fans such a
//! grid out across OS threads (`std::thread::scope`, no external
//! dependencies) and returns the results **in input order**, so any
//! table merged from them is byte-identical to a serial run. The only
//! thing parallelism may change is wall-clock time.
//!
//! Worker count resolution, highest priority first:
//!
//! 1. a programmatic override ([`set_jobs`], used by `--jobs N`),
//! 2. the `NVHSM_JOBS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! Scenario closures must be `Send` (each runs entirely on one worker
//! thread) but results are collected through per-slot storage, never a
//! shared accumulator, so no ordering coordination between workers is
//! needed and none can leak into the output.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One grid point's state: the pending closure, then its result.
struct Cell<T, F> {
    task: Option<F>,
    result: Option<T>,
}

/// Programmatic worker-count override; 0 means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for subsequent [`run_grid`] calls.
///
/// `Some(0)` and `Some(1)` both select serial execution; `None` clears
/// the override so `NVHSM_JOBS` / available parallelism apply again.
pub fn set_jobs(jobs: Option<usize>) {
    JOBS_OVERRIDE.store(jobs.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// The worker count [`run_grid`] will use for a grid of `tasks` tasks.
pub fn effective_jobs(tasks: usize) -> usize {
    let configured = match JOBS_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::env::var("NVHSM_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        n => n,
    };
    configured.min(tasks).max(1)
}

/// Runs every scenario in `scenarios` and returns their outputs in the
/// same order, regardless of worker count or scheduling.
///
/// Workers claim scenario indices from a shared atomic counter (natural
/// load balancing for grids whose points have very different costs) and
/// write each result into its own slot. A panicking scenario propagates
/// the panic to the caller after the scope joins.
pub fn run_grid<T, F>(scenarios: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let jobs = effective_jobs(scenarios.len());
    if jobs <= 1 {
        return scenarios.into_iter().map(|f| f()).collect();
    }

    // Per-index cells: workers take the closure and fill the result slot
    // for exactly the indices they claim, so neither `F: Sync` nor
    // `T: Sync` is required and output order is fixed by construction.
    let cells: Vec<Mutex<Cell<T, F>>> = scenarios
        .into_iter()
        .map(|f| {
            Mutex::new(Cell {
                task: Some(f),
                result: None,
            })
        })
        .collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let f = cell
                    .lock()
                    .unwrap()
                    .task
                    .take()
                    .expect("task claimed twice");
                let out = f();
                cell.lock().unwrap().result = Some(out);
            });
        }
    });

    cells
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .unwrap()
                .result
                .expect("scenario result missing (worker panicked?)")
        })
        .collect()
}

/// Maps `items` through `f` in parallel, preserving input order.
///
/// Convenience wrapper over [`run_grid`] for the common "same function,
/// many inputs" grids.
pub fn map_grid<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Send + Sync,
{
    let f = &f;
    run_grid(items.into_iter().map(|item| move || f(item)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        // Uneven per-task cost: late tasks finish first under any
        // parallel schedule, but output order must still match input.
        let out = map_grid((0..64u64).collect(), |i| {
            let spin = (64 - i) * 1_000;
            let mut acc = i;
            for k in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        for (expect, (i, _)) in out.iter().enumerate() {
            assert_eq!(*i, expect as u64);
        }
    }

    // The override is process-global, so every assertion that depends on
    // it lives in this one test to avoid cross-test races.
    #[test]
    fn jobs_override_and_serial_parallel_agreement() {
        let work = |i: u64| -> u64 {
            let mut acc = i;
            for _ in 0..100 {
                acc = acc.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(7);
            }
            acc
        };
        set_jobs(Some(1));
        let serial = map_grid((0..100).collect(), work);
        set_jobs(Some(8));
        let parallel = map_grid((0..100).collect(), work);
        assert_eq!(serial, parallel);

        set_jobs(Some(32));
        assert_eq!(effective_jobs(4), 4);
        assert_eq!(effective_jobs(0), 1);
        set_jobs(Some(0));
        assert_eq!(effective_jobs(16), 1);
        set_jobs(None);
    }

    #[test]
    fn empty_grid() {
        let out: Vec<u32> = run_grid(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }
}
