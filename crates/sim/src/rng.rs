//! Deterministic random number generation for simulations.
//!
//! [`SimRng`] is a small SplitMix64 generator: fast, seedable, with good
//! statistical quality for simulation purposes, and — critically — stable
//! across platforms and library versions, so experiment outputs are exactly
//! reproducible from their seeds. It also implements [`rand::RngCore`] so it
//! can drive any `rand` distribution.

use rand::RngCore;

/// A seedable SplitMix64 random number generator with simulation-oriented
/// helpers.
///
/// # Examples
///
/// ```
/// use nvhsm_sim::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        SimRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// component its own stream so adding a component does not perturb the
    /// draws seen by the others.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lo > hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform_range: lo > hi");
        lo + self.uniform() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift rejection method for unbiased bounded draws.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= (u64::MAX - n + 1) % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Exponential variate with the given mean; used for Poisson
    /// inter-arrival times.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0 && mean.is_finite());
        let u = 1.0 - self.uniform(); // in (0, 1]
        -mean * u.ln()
    }

    /// Normal variate (Box–Muller) with the given mean and standard
    /// deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Chooses an index in `[0, weights.len())` with probability
    /// proportional to `weights[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index over empty weights");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index over zero-sum weights");
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (SimRng::next_u64(self) >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        SimRng::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = SimRng::next_u64(self).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A Zipfian sampler over `[0, n)` with exponent `theta`.
///
/// Used by workload generators to produce skewed block popularity (hot/cold
/// data), which is what makes buffer caches and migration benefit analysis
/// interesting. Implemented by inverse-CDF on a precomputed table, so draws
/// are O(log n).
///
/// # Examples
///
/// ```
/// use nvhsm_sim::rng::Zipf;
/// use nvhsm_sim::SimRng;
/// let zipf = Zipf::new(100, 0.99);
/// let mut rng = SimRng::new(7);
/// let x = zipf.sample(&mut rng);
/// assert!(x < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `[0, n)` with skew `theta >= 0` (0 = uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        assert!(theta >= 0.0 && theta.is_finite(), "invalid Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items in the domain.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.uniform();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_gives_independent_stream() {
        let mut parent = SimRng::new(5);
        let mut child = parent.fork();
        // The child stream must not simply replay the parent's.
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SimRng::new(9);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_is_bounded_and_roughly_uniform() {
        let mut rng = SimRng::new(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 each; allow generous tolerance.
            assert!((8_500..11_500).contains(&c), "counts: {counts:?}");
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::new(13);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut rng = SimRng::new(17);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.15, "var = {var}");
    }

    #[test]
    fn weighted_index_prefers_heavier() {
        let mut rng = SimRng::new(19);
        let weights = [1.0, 9.0];
        let mut hits = [0usize; 2];
        for _ in 0..50_000 {
            hits[rng.weighted_index(&weights)] += 1;
        }
        let frac = hits[1] as f64 / 50_000.0;
        assert!((frac - 0.9).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(23);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0)); // clamped
    }

    #[test]
    fn zipf_skews_to_low_indices() {
        let zipf = Zipf::new(1000, 0.99);
        let mut rng = SimRng::new(29);
        let mut top10 = 0usize;
        let n = 50_000;
        for _ in 0..n {
            if zipf.sample(&mut rng) < 10 {
                top10 += 1;
            }
        }
        // With theta=0.99 and n=1000 the first 10 items carry ~38% of mass.
        let frac = top10 as f64 / n as f64;
        assert!(frac > 0.25, "frac = {frac}");
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = SimRng::new(31);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_500..11_500).contains(&c), "counts: {counts:?}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SimRng::new(37);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
