//! Streaming statistics for simulation measurement.
//!
//! Simulations in this workspace produce millions of latency samples; these
//! collectors keep O(1)–O(log) state per sample: Welford mean/variance
//! ([`OnlineStats`]), a log-bucketed latency histogram with percentile
//! queries ([`Histogram`]), and a windowed time series ([`TimeSeries`]) used
//! to reproduce the paper's "latency every 30 minutes" style plots.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Welford online mean / variance / extrema accumulator.
///
/// # Examples
///
/// ```
/// use nvhsm_sim::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] { s.add(x); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a duration sample in microseconds.
    pub fn add_duration_us(&mut self, d: SimDuration) {
        self.add(d.as_us_f64());
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Log-bucketed histogram over non-negative values with percentile queries.
///
/// Buckets grow geometrically from `min_value` with `BUCKETS_PER_DECADE`
/// buckets per decade, giving ~2.9 % relative resolution — plenty for latency
/// distribution shape and tail percentiles.
///
/// # Examples
///
/// ```
/// use nvhsm_sim::Histogram;
/// let mut h = Histogram::new();
/// for i in 1..=1000 { h.add(i as f64); }
/// let p50 = h.percentile(50.0);
/// assert!((400.0..600.0).contains(&p50));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    underflow: u64,
    total: u64,
    stats: OnlineStats,
}

impl Histogram {
    const MIN_VALUE: f64 = 1.0;
    const BUCKETS_PER_DECADE: f64 = 80.0;
    const NUM_BUCKETS: usize = 1040; // 13 decades

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; Self::NUM_BUCKETS],
            underflow: 0,
            total: 0,
            stats: OnlineStats::new(),
        }
    }

    fn bucket_of(value: f64) -> Option<usize> {
        if value < Self::MIN_VALUE {
            return None;
        }
        let idx = (value / Self::MIN_VALUE).log10() * Self::BUCKETS_PER_DECADE;
        Some((idx as usize).min(Self::NUM_BUCKETS - 1))
    }

    fn bucket_value(idx: usize) -> f64 {
        Self::MIN_VALUE * 10f64.powf((idx as f64 + 0.5) / Self::BUCKETS_PER_DECADE)
    }

    /// Adds one non-negative sample. Negative samples are clamped to zero.
    pub fn add(&mut self, value: f64) {
        let value = value.max(0.0);
        self.total += 1;
        self.stats.add(value);
        match Self::bucket_of(value) {
            Some(i) => self.counts[i] += 1,
            None => self.underflow += 1,
        }
    }

    /// Adds a duration sample in nanoseconds.
    pub fn add_duration(&mut self, d: SimDuration) {
        self.add(d.as_ns() as f64);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Largest sample seen.
    pub fn max(&self) -> Option<f64> {
        self.stats.max()
    }

    /// Approximate value at percentile `p` in `[0, 100]`; 0 if empty.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        debug_assert!((0.0..=100.0).contains(&p));
        if self.total == 0 {
            return 0.0;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return 0.0;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i);
            }
        }
        self.stats.max().unwrap_or(0.0)
    }

    /// Median latency (`percentile(50.0)`).
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 95th percentile (`percentile(95.0)`).
    pub fn p95(&self) -> f64 {
        self.percentile(95.0)
    }

    /// 99th percentile (`percentile(99.0)`).
    ///
    /// Every p99 the workspace reports is this one definition — harnesses
    /// must not re-derive tail percentiles from raw sample sorts.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.total += other.total;
        self.stats.merge(&other.stats);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Fixed-window time series: accumulates samples into consecutive windows of
/// simulated time and exposes the per-window means.
///
/// This reproduces the paper's measurement style ("we track the latency of
/// the NVDIMM ... every 30 minutes", Fig. 4/7) at whatever window the
/// experiment chooses.
///
/// # Examples
///
/// ```
/// use nvhsm_sim::{TimeSeries, SimTime, SimDuration};
/// let mut ts = TimeSeries::new(SimDuration::from_ms(1));
/// ts.add(SimTime::from_us(100), 10.0);
/// ts.add(SimTime::from_us(1500), 30.0);
/// let windows = ts.windows();
/// assert_eq!(windows.len(), 2);
/// assert_eq!(windows[0].mean, 10.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    window: SimDuration,
    slots: Vec<OnlineStats>,
}

/// One window of a [`TimeSeries`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Window {
    /// Start of the window.
    pub start: SimTime,
    /// Mean of the samples in the window (0 if the window is empty).
    pub mean: f64,
    /// Number of samples in the window.
    pub count: u64,
}

impl TimeSeries {
    /// Creates a series with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(window > SimDuration::ZERO, "window must be positive");
        TimeSeries {
            window,
            slots: Vec::new(),
        }
    }

    /// Window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Adds a sample observed at `time`.
    pub fn add(&mut self, time: SimTime, value: f64) {
        let idx = (time.as_ns() / self.window.as_ns()) as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, OnlineStats::new());
        }
        self.slots[idx].add(value);
    }

    /// Per-window summary, one entry per window from t = 0 to the last
    /// sampled window (empty windows included, with `count == 0`).
    pub fn windows(&self) -> Vec<Window> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| Window {
                start: SimTime::from_ns(i as u64 * self.window.as_ns()),
                mean: s.mean(),
                count: s.count(),
            })
            .collect()
    }

    /// Number of windows recorded so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.add(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let empty = OnlineStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn histogram_percentiles_roughly_correct() {
        let mut h = Histogram::new();
        for i in 1..=10_000 {
            h.add(i as f64);
        }
        for (p, expect) in [(50.0, 5_000.0), (90.0, 9_000.0), (99.0, 9_900.0)] {
            let got = h.percentile(p);
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.05, "p{p}: got {got}, expect {expect}");
        }
    }

    #[test]
    fn histogram_handles_small_and_zero() {
        let mut h = Histogram::new();
        h.add(0.0);
        h.add(0.5);
        h.add(-3.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile(50.0), 0.0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.add(10.0);
        b.add(1_000.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.percentile(99.0) > 500.0);
    }

    #[test]
    fn time_series_windows() {
        let mut ts = TimeSeries::new(SimDuration::from_us(10));
        ts.add(SimTime::from_us(1), 1.0);
        ts.add(SimTime::from_us(2), 3.0);
        ts.add(SimTime::from_us(25), 10.0);
        let w = ts.windows();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].mean, 2.0);
        assert_eq!(w[0].count, 2);
        assert_eq!(w[1].count, 0);
        assert_eq!(w[2].mean, 10.0);
        assert_eq!(w[2].start, SimTime::from_us(20));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn time_series_rejects_zero_window() {
        let _ = TimeSeries::new(SimDuration::ZERO);
    }

    proptest! {
        /// Welford mean matches a direct sum within floating tolerance.
        #[test]
        fn prop_mean_matches_direct(xs in proptest::collection::vec(-1e6f64..1e6, 1..500)) {
            let mut s = OnlineStats::new();
            for &x in &xs {
                s.add(x);
            }
            let direct = xs.iter().sum::<f64>() / xs.len() as f64;
            prop_assert!((s.mean() - direct).abs() < 1e-6 * (1.0 + direct.abs()));
        }

        /// Percentile is monotone in p.
        #[test]
        fn prop_percentile_monotone(xs in proptest::collection::vec(1.0f64..1e6, 1..300)) {
            let mut h = Histogram::new();
            for &x in &xs {
                h.add(x);
            }
            let mut last = 0.0;
            for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
                let v = h.percentile(p);
                prop_assert!(v >= last, "p{p} gave {v} < {last}");
                last = v;
            }
        }
    }
}
