//! Integer-nanosecond simulation time.
//!
//! Every simulator in the workspace shares this time base so that the memory
//! bus, flash channels, HDD mechanics and the storage manager can exchange
//! timestamps without unit confusion. `u64` nanoseconds cover ~584 years of
//! virtual time, far beyond any experiment here.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in simulated time, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use nvhsm_sim::{SimTime, SimDuration};
/// let t = SimTime::from_us(2) + SimDuration::from_ns(500);
/// assert_eq!(t.as_ns(), 2_500);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use nvhsm_sim::SimDuration;
/// let d = SimDuration::from_ms(1) + SimDuration::from_us(5);
/// assert_eq!(d.as_ns(), 1_005_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinity" sentinel for busy-until fields.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Time as fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time as fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond and clamping negatives to zero.
    pub fn from_us_f64(us: f64) -> Self {
        SimDuration((us.max(0.0) * 1_000.0).round() as u64)
    }

    /// Creates a duration from fractional nanoseconds, rounding and clamping
    /// negatives to zero.
    pub fn from_ns_f64(ns: f64) -> Self {
        SimDuration(ns.max(0.0).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Duration as fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration as fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The longer of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer count, saturating on overflow.
    pub fn saturating_mul(self, count: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(count))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
        assert_eq!(SimDuration::from_us(1), SimDuration::from_ns(1_000));
        assert_eq!(SimDuration::from_ms(1), SimDuration::from_us(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_ms(1_000));
    }

    #[test]
    fn arithmetic_round_trips() {
        let t0 = SimTime::from_us(10);
        let d = SimDuration::from_us(5);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX + SimDuration::from_ns(1), SimTime::MAX);
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_ns(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_ns(3).saturating_sub(SimDuration::from_ns(7)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_us_f64(1.5);
        assert_eq!(d.as_ns(), 1_500);
        assert!((d.as_us_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_us_f64(-2.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_ns_f64(2.4).as_ns(), 2);
        assert_eq!(SimDuration::from_ns_f64(2.6).as_ns(), 3);
    }

    #[test]
    fn ordering_and_extrema() {
        let a = SimTime::from_ns(5);
        let b = SimTime::from_ns(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimDuration::from_ns(5).max(SimDuration::from_ns(9)),
            SimDuration::from_ns(9)
        );
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(SimDuration::from_ns(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_us(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_ms(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_us).sum();
        assert_eq!(total, SimDuration::from_us(10));
    }

    #[test]
    fn mul_div_scaling() {
        let d = SimDuration::from_us(3);
        assert_eq!(d * 4, SimDuration::from_us(12));
        assert_eq!(d / 3, SimDuration::from_us(1));
        assert_eq!(d.saturating_mul(u64::MAX), SimDuration::MAX);
    }
}
