//! Turning a [`WorkloadProfile`] into a concrete request stream.

use crate::profile::WorkloadProfile;
use nvhsm_sim::rng::Zipf;
use nvhsm_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Direction of a generated request (converted to the device layer's
/// request type by the storage manager).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GenOp {
    /// Read.
    Read,
    /// Write.
    Write,
}

/// One generated request, addressed relative to the workload's VMDK.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenRequest {
    /// First block offset within the VMDK.
    pub offset: u64,
    /// Request size in 4 KiB blocks.
    pub size_blocks: u32,
    /// Read or write.
    pub op: GenOp,
}

/// Why a realized-rate measurement over a request stream is undefined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The stream holds no requests at all (e.g. a zero-length collection
    /// window).
    Empty,
    /// The stream's elapsed span is zero, so a rate is undefined.
    ZeroSpan,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Empty => write!(f, "request stream is empty"),
            StreamError::ZeroSpan => write!(f, "request stream spans zero time"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Realized arrival rate of a generated stream, requests per second over
/// the span from time zero (the generator's epoch) to the last arrival.
///
/// Total over its input: empty and zero-span streams yield a typed
/// [`StreamError`] instead of panicking, so callers measuring freshly
/// generated (possibly empty) streams can propagate the condition.
pub fn realized_rate(reqs: &[(SimTime, GenRequest)]) -> Result<f64, StreamError> {
    let (last, _) = reqs.last().ok_or(StreamError::Empty)?;
    let span = last.as_secs_f64();
    if span <= 0.0 {
        return Err(StreamError::ZeroSpan);
    }
    Ok(reqs.len() as f64 / span)
}

/// Poisson request generator for one workload.
///
/// Produces requests whose empirical characteristics converge to the
/// profile's parameters — that convergence is what the tests check, since
/// the performance model's features are measured from exactly these
/// streams.
///
/// # Examples
///
/// ```
/// use nvhsm_workload::{IoGenerator, WorkloadProfile};
/// use nvhsm_sim::SimRng;
///
/// let mut g = IoGenerator::new(WorkloadProfile::default(), SimRng::new(1));
/// let (t1, _) = g.next_request();
/// let (t2, _) = g.next_request();
/// assert!(t2 > t1);
/// ```
#[derive(Debug, Clone)]
pub struct IoGenerator {
    profile: WorkloadProfile,
    rng: SimRng,
    clock: SimTime,
    read_cursor: u64,
    write_cursor: u64,
    zipf: Option<Zipf>,
    /// Random phase offset so concurrent workloads do not pulse in step.
    phase_offset: f64,
}

impl IoGenerator {
    /// Builds a generator.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`WorkloadProfile::validate`].
    pub fn new(profile: WorkloadProfile, mut rng: SimRng) -> Self {
        profile.validate().expect("invalid workload profile");
        let zipf = (profile.zipf_theta > 0.0).then(|| {
            // Cap the Zipf table so huge working sets stay cheap; the tail
            // beyond the table is sampled uniformly.
            let n = profile.working_set_blocks.min(1 << 20) as usize;
            Zipf::new(n, profile.zipf_theta)
        });
        let read_cursor = rng.below(profile.working_set_blocks);
        let write_cursor = rng.below(profile.working_set_blocks);
        let phase_offset = rng.uniform() * std::f64::consts::TAU;
        IoGenerator {
            profile,
            rng,
            clock: SimTime::ZERO,
            read_cursor,
            write_cursor,
            zipf,
            phase_offset,
        }
    }

    /// Instantaneous rate multiplier from the intensity phase (MapReduce
    /// stages alternate between I/O-heavy and compute-heavy).
    fn phase_factor(&self) -> f64 {
        if self.profile.phase_period_s <= 0.0 || self.profile.phase_amplitude <= 0.0 {
            return 1.0;
        }
        let t = self.clock.as_secs_f64() / self.profile.phase_period_s;
        1.0 + self.profile.phase_amplitude * (std::f64::consts::TAU * t + self.phase_offset).sin()
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Rescales the arrival rate mid-run (phase changes).
    ///
    /// # Panics
    ///
    /// Panics if `iops` is not positive and finite.
    pub fn set_iops(&mut self, iops: f64) {
        assert!(iops > 0.0 && iops.is_finite(), "invalid iops");
        self.profile.iops = iops;
    }

    /// Changes the write ratio mid-run (phase changes: a shuffle-heavy
    /// stage turns write-dominant).
    ///
    /// # Panics
    ///
    /// Panics if `wr_ratio` is outside `[0, 1]`.
    pub fn set_wr_ratio(&mut self, wr_ratio: f64) {
        assert!(
            (0.0..=1.0).contains(&wr_ratio),
            "invalid wr_ratio {wr_ratio}"
        );
        self.profile.wr_ratio = wr_ratio;
    }

    fn random_offset(&mut self) -> u64 {
        let ws = self.profile.working_set_blocks;
        match &self.zipf {
            Some(z) => {
                let idx = z.sample(&mut self.rng) as u64;
                // Spread the hot indices across the working set
                // deterministically so "hot" isn't simply "first blocks".
                (idx * 0x9E37_79B9 + 7) % ws
            }
            None => self.rng.below(ws),
        }
    }

    fn draw_size(&mut self) -> u32 {
        // Two-point mix of 1-block and max-size requests hitting the
        // profile's mean: p·max + (1-p)·1 = mean.
        let max = self.profile.max_size_blocks;
        if max == 1 {
            return 1;
        }
        let p = (self.profile.mean_size_blocks - 1.0) / (max as f64 - 1.0);
        if self.rng.chance(p) {
            max
        } else {
            1
        }
    }

    /// Draws the next request and its arrival time (strictly increasing).
    pub fn next_request(&mut self) -> (SimTime, GenRequest) {
        let rate = (self.profile.iops * self.phase_factor()).max(1.0);
        let gap_ns = self.rng.exponential(1e9 / rate).max(1.0);
        self.clock += SimDuration::from_ns_f64(gap_ns);

        let is_write = self.rng.chance(self.profile.wr_ratio);
        let size = self.draw_size();
        let ws = self.profile.working_set_blocks;
        let (op, offset) = if is_write {
            let off = if self.rng.chance(self.profile.wr_rand) {
                self.random_offset()
            } else {
                self.write_cursor
            };
            self.write_cursor = (off + size as u64) % ws;
            (GenOp::Write, off)
        } else {
            let off = if self.rng.chance(self.profile.rd_rand) {
                self.random_offset()
            } else {
                self.read_cursor
            };
            self.read_cursor = (off + size as u64) % ws;
            (GenOp::Read, off)
        };
        // Clamp so the request fits inside the VMDK.
        let offset = offset.min(ws.saturating_sub(size as u64));
        (
            self.clock,
            GenRequest {
                offset,
                size_blocks: size,
                op,
            },
        )
    }

    /// Time of the most recently produced request.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Skips the generator's clock forward to `at` (idle phase).
    pub fn fast_forward(&mut self, at: SimTime) {
        self.clock = self.clock.max(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(profile: WorkloadProfile, n: usize) -> Vec<(SimTime, GenRequest)> {
        let mut g = IoGenerator::new(profile, SimRng::new(11));
        (0..n).map(|_| g.next_request()).collect()
    }

    #[test]
    fn realized_write_ratio_matches_profile() {
        let p = WorkloadProfile {
            wr_ratio: 0.25,
            ..WorkloadProfile::default()
        };
        let reqs = collect(p, 40_000);
        let writes = reqs.iter().filter(|(_, r)| r.op == GenOp::Write).count();
        let frac = writes as f64 / reqs.len() as f64;
        assert!((frac - 0.25).abs() < 0.02, "write frac {frac}");
    }

    #[test]
    fn realized_rate_matches_profile() -> Result<(), StreamError> {
        let p = WorkloadProfile {
            iops: 2_000.0,
            phase_amplitude: 0.0,
            ..WorkloadProfile::default()
        };
        let reqs = collect(p, 20_000);
        let rate = realized_rate(&reqs)?;
        assert!((rate - 2_000.0).abs() / 2_000.0 < 0.05, "rate {rate}");
        Ok(())
    }

    #[test]
    fn empty_and_zero_span_streams_are_typed_errors_not_panics() {
        // An empty profile/collection window produces no requests at all;
        // measuring its rate must surface a typed error, not a panic.
        assert_eq!(realized_rate(&[]), Err(StreamError::Empty));
        let degenerate = [(
            SimTime::ZERO,
            GenRequest {
                offset: 0,
                size_blocks: 1,
                op: GenOp::Read,
            },
        )];
        assert_eq!(realized_rate(&degenerate), Err(StreamError::ZeroSpan));
    }

    #[test]
    fn set_wr_ratio_retunes_the_stream() {
        let mut g = IoGenerator::new(WorkloadProfile::default(), SimRng::new(11));
        g.set_wr_ratio(1.0);
        for _ in 0..200 {
            let (_, r) = g.next_request();
            assert_eq!(r.op, GenOp::Write);
        }
    }

    #[test]
    fn realized_mean_size_matches_profile() {
        let p = WorkloadProfile {
            mean_size_blocks: 3.0,
            max_size_blocks: 9,
            ..WorkloadProfile::default()
        };
        let reqs = collect(p, 40_000);
        let mean = reqs.iter().map(|(_, r)| r.size_blocks as f64).sum::<f64>() / reqs.len() as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean size {mean}");
    }

    #[test]
    fn sequential_profile_walks_sequentially() {
        let p = WorkloadProfile {
            wr_ratio: 0.0,
            rd_rand: 0.0,
            mean_size_blocks: 1.0,
            max_size_blocks: 1,
            zipf_theta: 0.0,
            ..WorkloadProfile::default()
        };
        let reqs = collect(p, 100);
        for w in reqs.windows(2) {
            let (_, a) = w[0];
            let (_, b) = w[1];
            let expect = (a.offset + 1) % WorkloadProfile::default().working_set_blocks;
            assert_eq!(b.offset, expect);
        }
    }

    #[test]
    fn offsets_stay_inside_working_set() {
        let p = WorkloadProfile {
            working_set_blocks: 500,
            max_size_blocks: 16,
            mean_size_blocks: 8.0,
            ..WorkloadProfile::default()
        };
        let reqs = collect(p, 10_000);
        for (_, r) in reqs {
            assert!(r.offset + r.size_blocks as u64 <= 500);
        }
    }

    #[test]
    fn zipf_concentrates_random_reads() {
        let p = WorkloadProfile {
            wr_ratio: 0.0,
            rd_rand: 1.0,
            zipf_theta: 0.99,
            working_set_blocks: 10_000,
            ..WorkloadProfile::default()
        };
        let reqs = collect(p, 30_000);
        let mut counts = std::collections::HashMap::new();
        for (_, r) in &reqs {
            *counts.entry(r.offset).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top_share: u64 = freqs.iter().take(100).sum();
        let share = top_share as f64 / reqs.len() as f64;
        assert!(share > 0.3, "top-100 share {share}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = collect(WorkloadProfile::default(), 100);
        let b = collect(WorkloadProfile::default(), 100);
        assert_eq!(a, b);
    }
}
