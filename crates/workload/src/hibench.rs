//! The eight HiBench big-data workload profiles of the paper's Table 5.
//!
//! HiBench jobs are MapReduce pipelines; their storage-level behaviour is
//! what matters here. The profiles below encode the qualitative I/O
//! signatures the paper relies on (dfsioe_r/dfsioe_w as streaming
//! throughput tests, sort/wordcount as large sequential shuffles, bayes/
//! kmeans/pagerank/nutchindexing as mixed iterative jobs), with working
//! sets scaled from Table 5's dataset sizes by a common factor so a full
//! heterogeneous node can be simulated in seconds. All relative magnitudes
//! between benchmarks are preserved.

use crate::profile::WorkloadProfile;
use serde::{Deserialize, Serialize};

/// The eight big-data benchmarks of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// Naive Bayes training: 100 000 pages, 100 classes.
    Bayes,
    /// DFSIO read throughput: 2 500 files × 10 MB.
    DfsioeR,
    /// DFSIO write throughput: 2 500 files × 10 MB.
    DfsioeW,
    /// K-means clustering: 300 000 samples, 20 dimensions.
    Kmeans,
    /// Nutch indexing: 100 000 pages.
    NutchIndexing,
    /// PageRank: 500 000 pages.
    Pagerank,
    /// Sort: 2 400 000 records.
    Sort,
    /// WordCount: 3 200 000 records.
    Wordcount,
}

impl Benchmark {
    /// All eight, in Table 5 order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Bayes,
        Benchmark::DfsioeR,
        Benchmark::DfsioeW,
        Benchmark::Kmeans,
        Benchmark::NutchIndexing,
        Benchmark::Pagerank,
        Benchmark::Sort,
        Benchmark::Wordcount,
    ];

    /// Lower-case HiBench name.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Bayes => "bayes",
            Benchmark::DfsioeR => "dfsioe_r",
            Benchmark::DfsioeW => "dfsioe_w",
            Benchmark::Kmeans => "kmeans",
            Benchmark::NutchIndexing => "nutchindexing",
            Benchmark::Pagerank => "pagerank",
            Benchmark::Sort => "sort",
            Benchmark::Wordcount => "wordcount",
        }
    }
}

/// Working-set scale: blocks per "Table 5 size unit". Keeps eight VMDKs +
/// devices within test-friendly sizes while preserving relative footprints.
const MB: u64 = 256; // blocks per MiB

/// The I/O profile of one benchmark.
///
/// # Examples
///
/// ```
/// use nvhsm_workload::hibench::{profile, Benchmark};
/// let p = profile(Benchmark::DfsioeR);
/// assert!(p.wr_ratio < 0.2);   // read-throughput test
/// assert!(p.rd_rand < 0.2);    // streaming
/// ```
pub fn profile(benchmark: Benchmark) -> WorkloadProfile {
    let base = WorkloadProfile::default();
    match benchmark {
        // Model training: read-mostly, moderately random page accesses over
        // a medium corpus, small requests.
        Benchmark::Bayes => WorkloadProfile {
            name: "bayes".into(),
            wr_ratio: 0.20,
            rd_rand: 0.65,
            wr_rand: 0.50,
            mean_size_blocks: 2.0,
            max_size_blocks: 8,
            iops: 700.0,
            working_set_blocks: 96 * MB,
            zipf_theta: 0.9,
            ..base.clone()
        },
        // Streaming read throughput test: large sequential reads.
        Benchmark::DfsioeR => WorkloadProfile {
            name: "dfsioe_r".into(),
            wr_ratio: 0.05,
            rd_rand: 0.05,
            wr_rand: 0.30,
            mean_size_blocks: 12.0,
            max_size_blocks: 16,
            iops: 900.0,
            working_set_blocks: 160 * MB,
            zipf_theta: 0.0,
            ..base.clone()
        },
        // Streaming write throughput test: large sequential writes.
        Benchmark::DfsioeW => WorkloadProfile {
            name: "dfsioe_w".into(),
            wr_ratio: 0.90,
            rd_rand: 0.20,
            wr_rand: 0.05,
            mean_size_blocks: 12.0,
            max_size_blocks: 16,
            iops: 900.0,
            working_set_blocks: 160 * MB,
            zipf_theta: 0.0,
            ..base.clone()
        },
        // Iterative clustering: sequential scans of the sample matrix with
        // small writes of centroids.
        Benchmark::Kmeans => WorkloadProfile {
            name: "kmeans".into(),
            wr_ratio: 0.10,
            rd_rand: 0.25,
            wr_rand: 0.60,
            mean_size_blocks: 6.0,
            max_size_blocks: 16,
            iops: 800.0,
            working_set_blocks: 128 * MB,
            zipf_theta: 0.3,
            ..base.clone()
        },
        // Indexing: write-heavy with random index updates.
        Benchmark::NutchIndexing => WorkloadProfile {
            name: "nutchindexing".into(),
            wr_ratio: 0.60,
            rd_rand: 0.70,
            wr_rand: 0.75,
            mean_size_blocks: 2.0,
            max_size_blocks: 4,
            iops: 650.0,
            working_set_blocks: 96 * MB,
            zipf_theta: 0.8,
            ..base.clone()
        },
        // Graph iteration: random reads over the link structure.
        Benchmark::Pagerank => WorkloadProfile {
            name: "pagerank".into(),
            wr_ratio: 0.25,
            rd_rand: 0.85,
            wr_rand: 0.40,
            mean_size_blocks: 1.5,
            max_size_blocks: 4,
            iops: 750.0,
            working_set_blocks: 192 * MB,
            zipf_theta: 1.0,
            ..base.clone()
        },
        // Shuffle-heavy sort: balanced mix, large sequential runs.
        Benchmark::Sort => WorkloadProfile {
            name: "sort".into(),
            wr_ratio: 0.45,
            rd_rand: 0.15,
            wr_rand: 0.15,
            mean_size_blocks: 10.0,
            max_size_blocks: 16,
            iops: 850.0,
            working_set_blocks: 224 * MB,
            zipf_theta: 0.0,
            ..base.clone()
        },
        // Map-heavy wordcount: sequential reads, few small writes.
        Benchmark::Wordcount => WorkloadProfile {
            name: "wordcount".into(),
            wr_ratio: 0.12,
            rd_rand: 0.10,
            wr_rand: 0.40,
            mean_size_blocks: 8.0,
            max_size_blocks: 16,
            iops: 800.0,
            working_set_blocks: 256 * MB,
            zipf_theta: 0.2,
            ..base
        },
    }
}

/// All eight profiles, Table 5 order.
pub fn all_profiles() -> Vec<WorkloadProfile> {
    Benchmark::ALL.iter().map(|&b| profile(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_valid_and_named() {
        for b in Benchmark::ALL {
            let p = profile(b);
            p.validate().unwrap();
            assert_eq!(p.name, b.name());
        }
        assert_eq!(all_profiles().len(), 8);
    }

    #[test]
    fn profiles_span_the_feature_space() {
        let ps = all_profiles();
        let wr: Vec<f64> = ps.iter().map(|p| p.wr_ratio).collect();
        let rr: Vec<f64> = ps.iter().map(|p| p.rd_rand).collect();
        let max = |v: &[f64]| v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max(&wr) - min(&wr) > 0.5, "write ratios too uniform");
        assert!(max(&rr) - min(&rr) > 0.5, "read randomness too uniform");
    }

    #[test]
    fn dfsioe_pair_mirrors_read_write() {
        let r = profile(Benchmark::DfsioeR);
        let w = profile(Benchmark::DfsioeW);
        assert!(r.wr_ratio < 0.1 && w.wr_ratio > 0.8);
        assert_eq!(r.working_set_blocks, w.working_set_blocks);
    }

    #[test]
    fn working_sets_scale_with_table5_sizes() {
        // wordcount (3.2 M records) > sort (2.4 M) > bayes (100 k pages).
        assert!(
            profile(Benchmark::Wordcount).working_set_blocks
                > profile(Benchmark::Sort).working_set_blocks
        );
        assert!(
            profile(Benchmark::Sort).working_set_blocks
                > profile(Benchmark::Bayes).working_set_blocks
        );
    }
}
