//! Workload generation: big-data I/O profiles and SPEC-like memory traffic.
//!
//! The paper evaluates on eight HiBench big-data applications (Table 5)
//! mixed with one of three SPEC CPU2006 memory-intensive programs
//! (429.mcf, 470.lbm, 433.milc, chosen by RPKI/WPKI). Running Hadoop or
//! SPEC binaries is out of scope for a simulator-only reproduction; what
//! the paper's management layer actually consumes is:
//!
//! * per-workload *I/O request streams* characterized by the Eq. 2 feature
//!   vector (read/write mix, randomness, request sizes, arrival rate,
//!   working-set size), and
//! * per-SPEC-program *memory intensity over time* (the periodic
//!   fluctuation of Fig. 4 driven by RPKI/WPKI and phase behaviour).
//!
//! This crate generates exactly those: [`hibench`] provides the eight
//! profiles, [`spec`] the three memory-traffic phase generators, and
//! [`synthetic`] the parameterized trainer streams used to fit the
//! performance model (the paper uses Intel's Open Storage Toolkit for the
//! same purpose).
//!
//! # Examples
//!
//! ```
//! use nvhsm_workload::hibench::{profile, Benchmark};
//! use nvhsm_workload::IoGenerator;
//! use nvhsm_sim::SimRng;
//!
//! let mut g = IoGenerator::new(profile(Benchmark::Sort), SimRng::new(1));
//! let (when, req) = g.next_request();
//! assert!(req.size_blocks >= 1);
//! assert!(when > nvhsm_sim::SimTime::ZERO);
//! ```

pub mod generator;
pub mod hibench;
pub mod profile;
pub mod spec;
pub mod synthetic;
pub mod tenant;

pub use generator::{realized_rate, GenOp, GenRequest, IoGenerator, StreamError};
pub use profile::WorkloadProfile;
pub use spec::{SpecProgram, SpecTraffic};
pub use synthetic::SyntheticSpec;
pub use tenant::{ChurnAction, ChurnConfig, ChurnEvent, TenantClass, TenantSpec, VmdkDemand};
