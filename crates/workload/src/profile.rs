//! Workload profile: the parameter set that characterizes one I/O stream.

use serde::{Deserialize, Serialize};

/// Parameters of one workload's I/O behaviour.
///
/// These are the knobs that span the paper's Eq. 2 feature space; a
/// [`crate::IoGenerator`] turns a profile into a concrete request stream.
///
/// # Examples
///
/// ```
/// use nvhsm_workload::WorkloadProfile;
/// let p = WorkloadProfile::default().with_name("probe");
/// assert_eq!(p.name, "probe");
/// p.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Human-readable name.
    pub name: String,
    /// Fraction of writes among requests.
    pub wr_ratio: f64,
    /// Fraction of reads that jump to a random offset.
    pub rd_rand: f64,
    /// Fraction of writes that jump to a random offset.
    pub wr_rand: f64,
    /// Mean request size in 4 KiB blocks (geometric-ish mix of 1 and
    /// `max_size_blocks`).
    pub mean_size_blocks: f64,
    /// Largest request size in blocks.
    pub max_size_blocks: u32,
    /// Mean arrival rate in requests per second.
    pub iops: f64,
    /// Working set in 4 KiB blocks (also the VMDK size the workload needs).
    pub working_set_blocks: u64,
    /// Zipf skew of random accesses (0 = uniform); hot blocks make the
    /// NVDIMM buffer cache meaningful.
    pub zipf_theta: f64,
    /// Intensity-phase period (MapReduce-style stage alternation); zero
    /// disables phasing.
    pub phase_period_s: f64,
    /// Intensity-phase amplitude in [0, 1): instantaneous rate swings
    /// between `iops·(1−a)` and `iops·(1+a)`.
    pub phase_amplitude: f64,
}

impl WorkloadProfile {
    /// Renames the profile.
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_owned();
        self
    }

    /// Scales the arrival rate.
    pub fn with_iops(mut self, iops: f64) -> Self {
        self.iops = iops;
        self
    }

    /// Scales the working set.
    pub fn with_working_set(mut self, blocks: u64) -> Self {
        self.working_set_blocks = blocks;
        self
    }

    /// Checks parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("wr_ratio", self.wr_ratio),
            ("rd_rand", self.rd_rand),
            ("wr_rand", self.wr_rand),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0,1], got {v}"));
            }
        }
        if self.iops <= 0.0 || !self.iops.is_finite() {
            return Err("iops must be positive and finite".into());
        }
        if self.working_set_blocks == 0 {
            return Err("working set must be non-empty".into());
        }
        if self.max_size_blocks == 0 {
            return Err("max_size_blocks must be at least 1".into());
        }
        if self.mean_size_blocks < 1.0 || self.mean_size_blocks > self.max_size_blocks as f64 {
            return Err("mean_size_blocks must be in [1, max_size_blocks]".into());
        }
        if self.zipf_theta < 0.0 || !self.zipf_theta.is_finite() {
            return Err("zipf_theta must be non-negative".into());
        }
        if self.phase_period_s < 0.0 || !self.phase_period_s.is_finite() {
            return Err("phase_period_s must be non-negative".into());
        }
        if !(0.0..1.0).contains(&self.phase_amplitude) {
            return Err("phase_amplitude must be in [0, 1)".into());
        }
        Ok(())
    }
}

impl Default for WorkloadProfile {
    fn default() -> Self {
        WorkloadProfile {
            name: "default".to_owned(),
            wr_ratio: 0.3,
            rd_rand: 0.5,
            wr_rand: 0.5,
            mean_size_blocks: 2.0,
            max_size_blocks: 8,
            iops: 500.0,
            working_set_blocks: 64 * 1024, // 256 MiB
            zipf_theta: 0.8,
            phase_period_s: 3.0,
            phase_amplitude: 0.6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        WorkloadProfile::default().validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_values() {
        let p = WorkloadProfile {
            wr_ratio: 1.5,
            ..Default::default()
        };
        assert!(p.validate().is_err());

        let p = WorkloadProfile {
            iops: 0.0,
            ..Default::default()
        };
        assert!(p.validate().is_err());

        let p = WorkloadProfile {
            working_set_blocks: 0,
            ..Default::default()
        };
        assert!(p.validate().is_err());

        let p = WorkloadProfile {
            mean_size_blocks: 100.0,
            max_size_blocks: 8,
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn builders_chain() {
        let p = WorkloadProfile::default()
            .with_name("x")
            .with_iops(42.0)
            .with_working_set(1000);
        assert_eq!(p.name, "x");
        assert_eq!(p.iops, 42.0);
        assert_eq!(p.working_set_blocks, 1000);
    }
}
