//! SPEC CPU2006-like memory traffic phase generators.
//!
//! The paper mixes big-data I/O with one of three memory-intensive SPEC
//! programs, chosen by their RPKI/WPKI (Table 5): 429.mcf (40.58 / 15.42),
//! 470.lbm (22.68 / 13.28) and 433.milc (1.82 / 1.44). What the storage
//! layer sees of them is the *memory-channel utilization over time*: memory
//! phases and compute phases alternate (§3: "the memory access and CPU
//! computation are interleaving in most applications"), producing the
//! periodic NVDIMM latency fluctuation of Fig. 4.
//!
//! [`SpecTraffic`] converts RPKI/WPKI into a channel-utilization time
//! series `u(t)` with sinusoidal phase modulation, and can also emit a
//! request rate for the detailed bank-level model.

use nvhsm_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The three memory-intensity representatives of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecProgram {
    /// 429.mcf — RPKI 40.58, WPKI 15.42 (most memory-intensive).
    Mcf429,
    /// 470.lbm — RPKI 22.68, WPKI 13.28.
    Lbm470,
    /// 433.milc — RPKI 1.82, WPKI 1.44 (least memory-intensive).
    Milc433,
}

impl SpecProgram {
    /// All three, descending memory intensity.
    pub const ALL: [SpecProgram; 3] = [
        SpecProgram::Mcf429,
        SpecProgram::Lbm470,
        SpecProgram::Milc433,
    ];

    /// SPEC name.
    pub fn name(&self) -> &'static str {
        match self {
            SpecProgram::Mcf429 => "429.mcf",
            SpecProgram::Lbm470 => "470.lbm",
            SpecProgram::Milc433 => "433.milc",
        }
    }

    /// Memory reads per kilo-instruction (Table 5).
    pub fn rpki(&self) -> f64 {
        match self {
            SpecProgram::Mcf429 => 40.58,
            SpecProgram::Lbm470 => 22.68,
            SpecProgram::Milc433 => 1.82,
        }
    }

    /// Memory writes per kilo-instruction (Table 5).
    pub fn wpki(&self) -> f64 {
        match self {
            SpecProgram::Mcf429 => 15.42,
            SpecProgram::Lbm470 => 13.28,
            SpecProgram::Milc433 => 1.44,
        }
    }
}

/// Memory traffic of one SPEC-like program as seen by a memory channel.
///
/// # Examples
///
/// ```
/// use nvhsm_workload::{SpecProgram, SpecTraffic};
/// use nvhsm_sim::SimTime;
///
/// let t = SpecTraffic::new(SpecProgram::Mcf429);
/// let u = t.utilization_at(SimTime::from_ms(500));
/// assert!((0.0..1.0).contains(&u));
/// // mcf is far more intense than milc at every instant.
/// let milc = SpecTraffic::new(SpecProgram::Milc433);
/// assert!(u > milc.utilization_at(SimTime::from_ms(500)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecTraffic {
    program: SpecProgram,
    /// Peak channel utilization during a memory phase.
    peak_utilization: f64,
    /// Trough utilization during a compute phase.
    trough_utilization: f64,
    /// Phase period.
    period: SimDuration,
}

/// Instruction rate assumed when converting (R+W)PKI into request rates:
/// 2 GHz, ~1 IPC sustained (Table 4's 4-issue out-of-order core).
const INSTR_PER_SEC: f64 = 2.0e9;

/// Effective per-request bus occupancy amplification: row misses, bank
/// conflicts and command overhead make a 64 B request occupy more than its
/// raw 5 ns burst; calibrated against the bank-level model (~3× for
/// mcf-like mixed streams).
const OCCUPANCY_FACTOR: f64 = 3.0;

impl SpecTraffic {
    /// Builds the traffic model for `program` with a 2-second phase period
    /// (the virtual-time analogue of the paper's 30-minute observation
    /// windows).
    pub fn new(program: SpecProgram) -> Self {
        Self::with_period(program, SimDuration::from_secs(2))
    }

    /// Builds with an explicit phase period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_period(program: SpecProgram, period: SimDuration) -> Self {
        assert!(period > SimDuration::ZERO, "period must be positive");
        let mean = Self::mean_utilization_of(program);
        // Memory phases roughly double the mean; compute phases drop to a
        // small residue.
        SpecTraffic {
            program,
            peak_utilization: (mean * 1.9).min(0.92),
            trough_utilization: mean * 0.15,
            period,
        }
    }

    fn mean_utilization_of(program: SpecProgram) -> f64 {
        let reqs_per_sec = (program.rpki() + program.wpki()) / 1000.0 * INSTR_PER_SEC;
        // Per-channel share over 4 channels at 12.8 GB/s each, 64 B lines.
        let per_channel = reqs_per_sec / 4.0;
        let burst_ns = 5.0 * OCCUPANCY_FACTOR;
        (per_channel * burst_ns * 1e-9).min(0.9)
    }

    /// The program.
    pub fn program(&self) -> SpecProgram {
        self.program
    }

    /// The phase period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Channel utilization contributed by this program at time `t`:
    /// sinusoidal alternation between compute and memory phases.
    pub fn utilization_at(&self, t: SimTime) -> f64 {
        let phase = t.as_ns() as f64 / self.period.as_ns() as f64;
        let wave = 0.5 + 0.5 * (std::f64::consts::TAU * phase).sin();
        self.trough_utilization + (self.peak_utilization - self.trough_utilization) * wave
    }

    /// Mean utilization over a whole period.
    pub fn mean_utilization(&self) -> f64 {
        (self.peak_utilization + self.trough_utilization) / 2.0
    }

    /// DRAM request rate (requests/s, all channels) at time `t`, for
    /// driving the detailed bank-level model.
    pub fn request_rate_at(&self, t: SimTime) -> f64 {
        let u = self.utilization_at(t);
        // Invert the utilization formula.
        let burst_ns = 5.0 * OCCUPANCY_FACTOR;
        u / (burst_ns * 1e-9) * 4.0
    }

    /// Write fraction of the memory stream (WPKI / (RPKI + WPKI)).
    pub fn write_ratio(&self) -> f64 {
        let r = self.program.rpki();
        let w = self.program.wpki();
        w / (r + w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_ordering_matches_table5() {
        let u = |p| SpecTraffic::new(p).mean_utilization();
        assert!(u(SpecProgram::Mcf429) > u(SpecProgram::Lbm470));
        assert!(u(SpecProgram::Lbm470) > u(SpecProgram::Milc433));
    }

    #[test]
    fn milc_is_nearly_idle() {
        let t = SpecTraffic::new(SpecProgram::Milc433);
        assert!(t.mean_utilization() < 0.1, "{}", t.mean_utilization());
    }

    #[test]
    fn mcf_is_heavy_but_bounded() {
        let t = SpecTraffic::new(SpecProgram::Mcf429);
        assert!(t.mean_utilization() > 0.3);
        for i in 0..100 {
            let u = t.utilization_at(SimTime::from_ms(i * 37));
            assert!((0.0..=0.92).contains(&u));
        }
    }

    #[test]
    fn utilization_oscillates_with_period() {
        let t = SpecTraffic::with_period(SpecProgram::Mcf429, SimDuration::from_ms(100));
        // Quarter period = peak of sine, three quarters = trough.
        let peak = t.utilization_at(SimTime::from_ms(25));
        let trough = t.utilization_at(SimTime::from_ms(75));
        assert!(peak > trough + 0.2, "peak {peak} trough {trough}");
        // One full period later the value repeats.
        let again = t.utilization_at(SimTime::from_ms(125));
        assert!((peak - again).abs() < 1e-9);
    }

    #[test]
    fn write_ratio_from_pki() {
        let t = SpecTraffic::new(SpecProgram::Mcf429);
        assert!((t.write_ratio() - 15.42 / 56.0).abs() < 1e-9);
    }

    #[test]
    fn request_rate_inverts_utilization() {
        let t = SpecTraffic::new(SpecProgram::Lbm470);
        let at = SimTime::from_ms(333);
        let rate = t.request_rate_at(at);
        let u = t.utilization_at(at);
        let back = rate / 4.0 * 15.0e-9;
        assert!((back - u).abs() < 1e-9);
    }

    #[test]
    fn names_and_pki_table() {
        assert_eq!(SpecProgram::Mcf429.name(), "429.mcf");
        assert_eq!(SpecProgram::Mcf429.rpki(), 40.58);
        assert_eq!(SpecProgram::Milc433.wpki(), 1.44);
        assert_eq!(SpecProgram::ALL.len(), 3);
    }
}
