//! Synthetic model-training workloads.
//!
//! The paper trains its performance model on traces from a synthetic I/O
//! workload generator (Intel's Open Storage Toolkit) spanning the Eq. 2
//! feature space. [`SyntheticSpec`] is our equivalent: it enumerates a
//! grid over the feature knobs and yields a [`WorkloadProfile`] per point,
//! so the training pipeline can drive the device with known
//! characteristics and record the resulting latency.

use crate::profile::WorkloadProfile;
use serde::{Deserialize, Serialize};

/// A point in the workload-characteristics space used for training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Write fraction.
    pub wr_ratio: f64,
    /// Random fraction of reads.
    pub rd_rand: f64,
    /// Random fraction of writes.
    pub wr_rand: f64,
    /// Request size in 4 KiB blocks.
    pub size_blocks: u32,
    /// Arrival rate.
    pub iops: f64,
}

impl SyntheticSpec {
    /// Converts the spec into a runnable profile over `working_set_blocks`.
    pub fn to_profile(self, working_set_blocks: u64) -> WorkloadProfile {
        WorkloadProfile {
            name: format!(
                "synth_w{:.0}_rr{:.0}_s{}_q{:.0}",
                self.wr_ratio * 100.0,
                self.rd_rand * 100.0,
                self.size_blocks,
                self.iops
            ),
            wr_ratio: self.wr_ratio,
            rd_rand: self.rd_rand,
            wr_rand: self.wr_rand,
            mean_size_blocks: self.size_blocks as f64,
            max_size_blocks: self.size_blocks,
            iops: self.iops,
            working_set_blocks,
            zipf_theta: 0.0,
            // Training streams are stationary: the model maps features to
            // latency; phases would only add epoch-level noise.
            phase_period_s: 0.0,
            phase_amplitude: 0.0,
        }
    }
}

/// The default training grid: 3 write ratios × 3 read randomnesses ×
/// 2 sizes × 3 rates = 54 points, spanning the Eq. 2 space the way the
/// paper's "five access patterns × storage condition" sweep does.
///
/// # Examples
///
/// ```
/// use nvhsm_workload::synthetic::training_grid;
/// let grid = training_grid();
/// assert!(grid.len() >= 50);
/// ```
pub fn training_grid() -> Vec<SyntheticSpec> {
    let mut out = Vec::new();
    for &wr_ratio in &[0.1, 0.5, 0.9] {
        for &rd_rand in &[0.0, 0.5, 1.0] {
            for &size_blocks in &[1u32, 8] {
                for &iops in &[300.0, 1200.0, 4000.0] {
                    out.push(SyntheticSpec {
                        wr_ratio,
                        rd_rand,
                        wr_rand: rd_rand, // sweep randomness jointly
                        size_blocks,
                        iops,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_size_and_validity() {
        let grid = training_grid();
        assert_eq!(grid.len(), 54);
        for spec in grid {
            spec.to_profile(10_000).validate().unwrap();
        }
    }

    #[test]
    fn grid_spans_extremes() {
        let grid = training_grid();
        assert!(grid.iter().any(|s| s.wr_ratio <= 0.1 && s.rd_rand <= 0.0));
        assert!(grid.iter().any(|s| s.wr_ratio >= 0.9 && s.rd_rand >= 1.0));
        assert!(grid.iter().any(|s| s.iops >= 4000.0));
    }

    #[test]
    fn profile_name_encodes_parameters() {
        let spec = SyntheticSpec {
            wr_ratio: 0.5,
            rd_rand: 1.0,
            wr_rand: 1.0,
            size_blocks: 8,
            iops: 1200.0,
        };
        let p = spec.to_profile(1000);
        assert_eq!(p.name, "synth_w50_rr100_s8_q1200");
    }
}
