//! Open-loop tenant churn: the datacenter-scale arrival process.
//!
//! The paper's workloads are a fixed set of eight benchmarks; a serving
//! fleet instead sees *tenants* arrive and depart continuously. This
//! module generates a seeded, fully deterministic schedule of tenant
//! admissions and retirements over simulated hours:
//!
//! * **Open-loop arrivals** — a non-homogeneous Poisson process (thinning
//!   over a diurnal rate curve) decides *when* tenants arrive; nothing
//!   about the serving plane's response feeds back into the schedule.
//! * **Diurnal load** — the arrival rate swings sinusoidally over a
//!   configurable period (a compressed day).
//! * **Flash crowds** — bursts of simultaneous arrivals at deterministic
//!   instants, stressing admission control and the placement spill path.
//! * **Noisy neighbors** — a configurable fraction of tenants get an
//!   order-of-magnitude I/O rate multiplier.
//!
//! Determinism contract: the *master* RNG (seeded from
//! [`ChurnConfig::seed`]) draws only arrival instants and tenant
//! ordinals; everything tenant-specific (size, rate, lifetime, class,
//! home node) comes from a per-tenant RNG forked from the seed and the
//! tenant id. Tenant `k`'s shape therefore never depends on how many
//! draws earlier tenants consumed, and the whole schedule — hence every
//! trace event downstream — is byte-identical for any `--jobs` count.

use nvhsm_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Tenant behaviour class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TenantClass {
    /// Ordinary tenant.
    Standard,
    /// Noisy neighbor: same footprint, ~10× the I/O rate.
    Noisy,
}

/// One VMDK a tenant asks the serving plane to host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmdkDemand {
    /// Image size, 4 KiB blocks.
    pub blocks: u64,
    /// Mean request rate, requests/s.
    pub iops: f64,
    /// Write fraction.
    pub wr_ratio: f64,
    /// Random fraction of reads.
    pub rd_rand: f64,
    /// Random fraction of writes.
    pub wr_rand: f64,
    /// Mean request size, blocks.
    pub mean_size_blocks: f64,
}

/// One tenant's admission request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Tenant id (dense ordinals in arrival order).
    pub tenant: u32,
    /// Node the tenant's compute lands on (its placement home).
    pub home_node: usize,
    /// p99 latency SLO, µs.
    pub slo_us: f64,
    /// Behaviour class.
    pub class: TenantClass,
    /// The VMDKs to place.
    pub vmdks: Vec<VmdkDemand>,
}

impl TenantSpec {
    /// Total blocks across the tenant's VMDKs.
    pub fn total_blocks(&self) -> u64 {
        self.vmdks.iter().map(|v| v.blocks).sum()
    }
}

/// What happens at one schedule instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChurnAction {
    /// Admit the tenant.
    Admit(TenantSpec),
    /// Retire the tenant (by id).
    Retire(u32),
}

/// One entry of the churn schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Seconds since schedule start.
    pub at_s: f64,
    /// The action.
    pub action: ChurnAction,
}

/// Knobs of the churn arrival process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Nodes in the fleet (tenant homes are drawn uniformly).
    pub nodes: usize,
    /// Schedule horizon, simulated hours.
    pub hours: f64,
    /// Base arrival rate, tenants per hour (the diurnal mean).
    pub arrivals_per_hour: f64,
    /// Diurnal swing in [0, 1): rate varies between
    /// `base·(1−a)` and `base·(1+a)`.
    pub diurnal_amplitude: f64,
    /// The compressed "day" length, hours (the sinusoid's period).
    pub diurnal_period_hours: f64,
    /// Number of flash-crowd bursts, evenly spaced over the horizon.
    pub flash_crowds: u32,
    /// Simultaneous arrivals per flash crowd.
    pub flash_size: u32,
    /// Fraction of tenants that are noisy neighbors.
    pub noisy_fraction: f64,
    /// Mean tenant lifetime, hours (exponential; retirements past the
    /// horizon are dropped — the tenant stays resident).
    pub mean_lifetime_hours: f64,
    /// Inclusive range of VMDKs per tenant.
    pub vmdks_per_tenant: (u32, u32),
    /// Inclusive range of blocks per VMDK (log-uniform).
    pub blocks_per_vmdk: (u64, u64),
    /// Inclusive range of per-VMDK request rates, requests/s.
    pub iops_range: (f64, f64),
    /// p99 SLO handed to every tenant, µs.
    pub slo_us: f64,
    /// Master seed.
    pub seed: u64,
}

impl ChurnConfig {
    /// A small steady fleet: gentle arrivals, no bursts.
    pub fn calm(nodes: usize, seed: u64) -> Self {
        ChurnConfig {
            nodes,
            hours: 2.0,
            arrivals_per_hour: 30.0,
            diurnal_amplitude: 0.0,
            diurnal_period_hours: 1.0,
            flash_crowds: 0,
            flash_size: 0,
            noisy_fraction: 0.0,
            mean_lifetime_hours: 0.8,
            vmdks_per_tenant: (1, 3),
            blocks_per_vmdk: (2_000, 40_000),
            iops_range: (40.0, 250.0),
            slo_us: 2_000.0,
            seed,
        }
    }

    /// Diurnal load with noisy neighbors.
    pub fn diurnal(nodes: usize, seed: u64) -> Self {
        ChurnConfig {
            diurnal_amplitude: 0.7,
            diurnal_period_hours: 1.0,
            noisy_fraction: 0.1,
            ..Self::calm(nodes, seed)
        }
    }

    /// Diurnal load plus flash crowds: the stress profile.
    pub fn flash(nodes: usize, seed: u64) -> Self {
        ChurnConfig {
            flash_crowds: 3,
            flash_size: 8,
            ..Self::diurnal(nodes, seed)
        }
    }

    /// Instantaneous arrival rate (tenants/hour) at `t` hours.
    pub fn rate_at(&self, t_hours: f64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * t_hours / self.diurnal_period_hours.max(1e-9);
        (self.arrivals_per_hour * (1.0 + self.diurnal_amplitude * phase.sin())).max(0.0)
    }
}

/// Per-tenant RNG: forked from the seed and the tenant id only, so a
/// tenant's shape is independent of every other tenant's draws.
fn tenant_rng(seed: u64, tenant: u32) -> SimRng {
    SimRng::new(
        seed ^ (tenant as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5_4A32_D192_ED03),
    )
}

/// Draws one tenant's full spec from its forked RNG.
fn draw_tenant(cfg: &ChurnConfig, tenant: u32) -> TenantSpec {
    let mut rng = tenant_rng(cfg.seed, tenant);
    let class = if rng.chance(cfg.noisy_fraction) {
        TenantClass::Noisy
    } else {
        TenantClass::Standard
    };
    let rate_mul = if class == TenantClass::Noisy {
        10.0
    } else {
        1.0
    };
    let (lo_v, hi_v) = cfg.vmdks_per_tenant;
    let vmdk_count = lo_v + rng.below((hi_v - lo_v + 1) as u64) as u32;
    let (lo_b, hi_b) = cfg.blocks_per_vmdk;
    let vmdks = (0..vmdk_count)
        .map(|_| {
            // Log-uniform sizes: fleets are dominated by small images with
            // a heavy tail of large ones.
            let log_blocks = rng.uniform_range((lo_b as f64).ln(), (hi_b as f64).ln());
            VmdkDemand {
                blocks: (log_blocks.exp() as u64).clamp(lo_b, hi_b),
                iops: rng.uniform_range(cfg.iops_range.0, cfg.iops_range.1) * rate_mul,
                wr_ratio: rng.uniform_range(0.1, 0.6),
                rd_rand: rng.uniform_range(0.2, 0.9),
                wr_rand: rng.uniform_range(0.2, 0.9),
                mean_size_blocks: rng.uniform_range(1.0, 4.0),
            }
        })
        .collect();
    TenantSpec {
        tenant,
        home_node: rng.below(cfg.nodes.max(1) as u64) as usize,
        slo_us: cfg.slo_us,
        class,
        vmdks,
    }
}

/// Generates the full churn schedule: admissions from the open-loop
/// arrival process (plus flash crowds), one retirement per tenant whose
/// exponential lifetime ends inside the horizon. Events are sorted by
/// time with a stable, deterministic tie-break (admissions before
/// retirements, then tenant ordinal).
pub fn generate(cfg: &ChurnConfig) -> Vec<ChurnEvent> {
    assert!(cfg.nodes > 0, "churn schedule needs at least one node");
    let horizon_s = cfg.hours * 3600.0;
    let mut master = SimRng::new(cfg.seed);
    let mut arrivals: Vec<f64> = Vec::new();

    // Thinning: candidates at the peak rate, accepted with rate(t)/peak.
    let peak = (cfg.arrivals_per_hour * (1.0 + cfg.diurnal_amplitude)).max(1e-9);
    let mut t_s = 0.0;
    while t_s < horizon_s {
        t_s += master.exponential(3600.0 / peak);
        if t_s >= horizon_s {
            break;
        }
        if master.chance(cfg.rate_at(t_s / 3600.0) / peak) {
            arrivals.push(t_s);
        }
    }
    // Flash crowds at deterministic instants.
    for k in 0..cfg.flash_crowds {
        let burst_at = horizon_s * (k as f64 + 0.5) / cfg.flash_crowds as f64;
        for _ in 0..cfg.flash_size {
            arrivals.push(burst_at);
        }
    }
    arrivals.sort_by(|a, b| a.total_cmp(b));

    let mut events: Vec<(f64, u8, u32)> = Vec::new(); // (time, kind, tenant)
    for (ordinal, &at_s) in arrivals.iter().enumerate() {
        let tenant = ordinal as u32;
        events.push((at_s, 0, tenant));
        // A distinct per-tenant stream (seed salted differently), so the
        // lifetime draw shares no state with the spec draws.
        let lifetime_s = tenant_rng(cfg.seed ^ 0x51FE_71FE, tenant)
            .exponential(cfg.mean_lifetime_hours * 3600.0)
            .max(60.0);
        let retire_at = at_s + lifetime_s;
        if retire_at < horizon_s {
            events.push((retire_at, 1, tenant));
        }
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    events
        .into_iter()
        .map(|(at_s, kind, tenant)| ChurnEvent {
            at_s,
            action: if kind == 0 {
                ChurnAction::Admit(draw_tenant(cfg, tenant))
            } else {
                ChurnAction::Retire(tenant)
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_sorted() {
        let cfg = ChurnConfig::flash(16, 77);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].at_s <= w[1].at_s));
    }

    #[test]
    fn retirements_only_follow_admissions() {
        let cfg = ChurnConfig::diurnal(8, 3);
        let mut admitted = std::collections::HashSet::new();
        for e in generate(&cfg) {
            match e.action {
                ChurnAction::Admit(ref spec) => {
                    assert!(admitted.insert(spec.tenant), "tenant admitted twice");
                    assert!(spec.home_node < 8);
                    assert!(!spec.vmdks.is_empty());
                    for v in &spec.vmdks {
                        assert!(v.blocks >= cfg.blocks_per_vmdk.0);
                        assert!(v.blocks <= cfg.blocks_per_vmdk.1);
                        assert!(v.iops > 0.0);
                    }
                }
                ChurnAction::Retire(t) => {
                    assert!(admitted.contains(&t), "retired a tenant never admitted");
                }
            }
        }
    }

    #[test]
    fn tenant_shape_is_independent_of_other_tenants() {
        // The forked-RNG contract: tenant 5 looks the same whether the
        // schedule produced 10 or 1000 arrivals before it.
        let cfg = ChurnConfig::calm(4, 11);
        let spec_a = draw_tenant(&cfg, 5);
        let spec_b = draw_tenant(&cfg, 5);
        assert_eq!(spec_a, spec_b);
        let mut busy = cfg.clone();
        busy.arrivals_per_hour *= 50.0;
        assert_eq!(draw_tenant(&busy, 5), spec_a);
    }

    #[test]
    fn flash_crowds_pile_up_and_noisy_tenants_run_hot() {
        let cfg = ChurnConfig {
            flash_crowds: 2,
            flash_size: 10,
            noisy_fraction: 0.5,
            ..ChurnConfig::calm(8, 9)
        };
        let events = generate(&cfg);
        // Each burst instant hosts at least flash_size admissions.
        let mut by_time: std::collections::HashMap<u64, u32> = Default::default();
        for e in &events {
            if matches!(e.action, ChurnAction::Admit(_)) {
                *by_time.entry(e.at_s.to_bits()).or_default() += 1;
            }
        }
        assert!(by_time.values().filter(|&&n| n >= 10).count() >= 2);
        // Noisy neighbors exist and exceed the configured rate range.
        let noisy = events.iter().any(|e| match &e.action {
            ChurnAction::Admit(s) => {
                s.class == TenantClass::Noisy
                    && s.vmdks.iter().any(|v| v.iops > cfg.iops_range.1 * 2.0)
            }
            _ => false,
        });
        assert!(noisy, "expected at least one noisy tenant");
    }

    #[test]
    fn diurnal_rate_swings_around_the_base() {
        let cfg = ChurnConfig::diurnal(4, 1);
        let peak = cfg.rate_at(0.25); // quarter period = sinusoid max
        let trough = cfg.rate_at(0.75);
        assert!(peak > cfg.arrivals_per_hour * 1.5);
        assert!(trough < cfg.arrivals_per_hour * 0.5);
    }
}
