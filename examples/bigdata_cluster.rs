//! The paper's multi-node scenario: a three-node cluster running all eight
//! HiBench workloads next to 429.mcf, compared across management policies.
//!
//! Run with: `cargo run --release --example bigdata_cluster`

use nvdimm_hsm::core::{ClusterConfig, ClusterSim, PolicyKind};
use nvdimm_hsm::workload::hibench::all_profiles;
use nvdimm_hsm::workload::SpecProgram;

fn run_policy(policy: PolicyKind) -> (f64, u64, f64) {
    let mut cfg = ClusterConfig::small().with_policy(policy);
    cfg.node.spec = Some(SpecProgram::Mcf429);
    cfg.node.train_requests = 40;
    let mut sim = ClusterSim::new(cfg, 7);
    for profile in all_profiles() {
        let scaled = profile.working_set_blocks / 16;
        sim.add_workload(profile.with_working_set(scaled));
    }
    let report = sim.run_secs(6);
    (
        report.report.mean_latency_us,
        report.report.migrations_started,
        report.report.migration_time.as_secs_f64(),
    )
}

fn main() {
    println!("three-node cluster, eight HiBench workloads + 429.mcf\n");
    println!(
        "{:<16} {:>14} {:>12} {:>14}",
        "policy", "mean lat (µs)", "migrations", "mig time (s)"
    );
    for policy in [
        PolicyKind::Basil,
        PolicyKind::Pesto,
        PolicyKind::LightSrm,
        PolicyKind::Bca,
        PolicyKind::BcaLazy,
        PolicyKind::BcaLazyArch,
    ] {
        let (lat, migs, mig_s) = run_policy(policy);
        println!("{policy:<16} {lat:>14.1} {migs:>12} {mig_s:>14.2}");
    }
    println!("\n(the BCA family should migrate less and sit at lower latency)");
}
