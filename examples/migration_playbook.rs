//! The §5.3 architectural playbook at device level: how migration traffic
//! hurts an NVDIMM, and what the scheduling policies (Fig. 9/14) and the
//! cache bypass (Fig. 11/15) each buy back.
//!
//! Run with: `cargo run --release --example migration_playbook`

use nvdimm_hsm::cache::BufferCache;
use nvdimm_hsm::device::{
    IoOp, IoRequest, MigrationTuning, NvdimmConfig, NvdimmDevice, StorageDevice,
};
use nvdimm_hsm::flash::sched::{simulate, SchedConfig, SchedPolicy, WriteClass, WriteRequest};
use nvdimm_hsm::sim::{SimDuration, SimRng, SimTime};

/// Drives a hot workload + migration sweep under the given tuning; returns
/// (mean workload latency µs, cache hit ratio).
fn serve_with_tuning(tuning: MigrationTuning) -> (f64, f64) {
    let mut dev = NvdimmDevice::new(NvdimmConfig::small_test().with_tuning(tuning));
    let span = dev.logical_blocks() / 2;
    dev.prefill(0..span);
    let mut rng = SimRng::new(3);
    let hot = 800u64;
    let mut t = SimTime::ZERO;
    // Warm the cache.
    for _ in 0..4 * hot {
        dev.submit(&IoRequest::normal(0, rng.below(hot), 1, IoOp::Read, t));
        t += SimDuration::from_us(40);
    }
    dev.cache().hits(); // warm counters exist; reset via stats epoch
    let mut sum = 0.0;
    let n = 4_000;
    for sweep in 200_000u64..200_000 + n {
        let c = dev.submit(&IoRequest::normal(0, rng.below(hot), 1, IoOp::Read, t));
        sum += c.latency.as_us_f64();
        // Interleaved migration: read out + write in.
        dev.submit(&IoRequest::migrated(8, sweep % span, 1, IoOp::Read, t));
        dev.submit(&IoRequest::migrated(
            9,
            (sweep + span / 2) % span,
            1,
            IoOp::Write,
            t,
        ));
        t += SimDuration::from_us(100);
    }
    (sum / n as f64, dev.cache().hit_ratio())
}

fn main() {
    println!("== cache bypassing + scheduling at the device level ==\n");
    println!(
        "{:<24} {:>16} {:>12}",
        "tuning", "workload lat (µs)", "hit ratio"
    );
    for (name, tuning) in [
        ("baseline", MigrationTuning::baseline()),
        (
            "bypass only",
            MigrationTuning {
                cache_bypass: true,
                sched_optimization: false,
            },
        ),
        (
            "sched only",
            MigrationTuning {
                cache_bypass: false,
                sched_optimization: true,
            },
        ),
        ("bypass + sched", MigrationTuning::optimized()),
    ] {
        let (lat, hit) = serve_with_tuning(tuning);
        println!("{name:<24} {lat:>16.1} {hit:>12.2}");
    }

    println!("\n== write scheduling policies (Fig. 9/14) ==\n");
    let mut rng = SimRng::new(5);
    // Barriers delimit epochs of *persistent* writes (every 4th); migrated
    // writes from a concurrent migration interleave at a 50% share.
    let mut epoch = 0u32;
    let mut persistent_seen = 0u64;
    let trace: Vec<WriteRequest> = (0..1_200u64)
        .map(|i| {
            let migrated = rng.chance(0.4);
            if !migrated {
                persistent_seen += 1;
                if persistent_seen.is_multiple_of(4) {
                    epoch += 1;
                }
            }
            WriteRequest {
                id: i,
                class: if migrated {
                    WriteClass::Migrated
                } else {
                    WriteClass::Persistent
                },
                channel: rng.below(16) as usize,
                epoch,
                arrival: SimTime::from_us(i * 8),
                addr: rng.below(1 << 20) * 4096,
            }
        })
        .collect();
    let cfg = SchedConfig::table4();
    let base = simulate(&cfg, &trace, SchedPolicy::Baseline);
    println!(
        "{:<16} {:>14} {:>14} {:>12}",
        "policy", "persist (µs)", "migrated (µs)", "makespan(ms)"
    );
    for policy in [
        SchedPolicy::Baseline,
        SchedPolicy::PolicyOne,
        SchedPolicy::PolicyTwo,
        SchedPolicy::Both,
        SchedPolicy::BothNpBarrier,
    ] {
        let s = simulate(&cfg, &trace, policy);
        println!(
            "{:<16} {:>14.1} {:>14.1} {:>12.2}",
            format!("{policy:?}"),
            s.persistent_mean_us,
            s.migrated_mean_us,
            s.makespan.as_ms_f64(),
        );
    }
    let _ = base;
}
