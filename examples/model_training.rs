//! Training and verifying the §4 performance model: fit the regression
//! tree on contention-free synthetic workloads, then watch `BC = MP − PP`
//! isolate the memory-bus contention on a live NVDIMM (the Fig. 7 setup).
//!
//! Run with: `cargo run --release --example model_training`

use nvdimm_hsm::core::pretrain_models;
use nvdimm_hsm::device::{DeviceKind, IoOp, IoRequest, NvdimmConfig, NvdimmDevice, StorageDevice};
use nvdimm_hsm::model::{ContentionEstimator, Features};
use nvdimm_hsm::sim::{SimDuration, SimRng, SimTime};
use nvdimm_hsm::workload::{SpecProgram, SpecTraffic};

fn main() {
    println!("pretraining device models on the synthetic grid…");
    let models = pretrain_models(80, 42);
    for kind in [DeviceKind::Nvdimm, DeviceKind::Ssd, DeviceKind::Hdd] {
        println!(
            "  {:6} baseline {:8.1} µs, OIO slope {:6.1} µs, streaming {:6.1} µs/blk",
            kind.to_string(),
            models.baseline_us(kind),
            models.slope_us_per_oio(kind),
            models.seq_block_us(kind)
        );
    }

    // Live phase: an NVDIMM under fluctuating mcf memory traffic.
    let model = models.model(DeviceKind::Nvdimm);
    let mut estimator = ContentionEstimator::new();
    let mut dev = NvdimmDevice::new(NvdimmConfig::small_test());
    dev.prefill(0..40_000);
    let spec = SpecTraffic::new(SpecProgram::Mcf429);
    let mut rng = SimRng::new(7);

    println!("\nepoch  util  measured(µs)  predicted(µs)  contention(µs)");
    let epoch = SimDuration::from_ms(200);
    let mut t = SimTime::ZERO;
    for e in 0..16 {
        let util = spec.utilization_at(t + epoch / 2);
        dev.set_ambient_bus_utilization(util);
        let end = t + epoch;
        while t < end {
            let block = rng.below(40_000);
            let op = if rng.chance(0.3) {
                IoOp::Write
            } else {
                IoOp::Read
            };
            dev.submit(&IoRequest::normal(0, block, 1, op, t));
            t += SimDuration::from_us(400);
        }
        let stats = dev.stats_mut().take_epoch(t);
        if stats.io_count() == 0 {
            continue;
        }
        let features = Features {
            wr_ratio: stats.wr_ratio(),
            oios: stats.oio(),
            ios: stats.mean_ios_blocks(),
            wr_rand: stats.wr_rand(),
            rd_rand: stats.rd_rand(),
            free_space_ratio: dev.free_space_ratio(),
        };
        let measured = stats.mean_latency_us();
        let bc = estimator.observe(model, &features, measured);
        println!(
            "{e:>5}  {util:>4.2}  {measured:>12.1}  {:>13.1}  {bc:>14.1}",
            model.predict(&features)
        );
    }
    println!(
        "\nmean contention estimate over the run: {:.1} µs (Eq. 3: BC = MP − PP)",
        estimator.mean_us()
    );
}
