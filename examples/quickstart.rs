//! Quickstart: one server node with NVDIMM + SSD + HDD, two big-data
//! workloads, and the paper's bus-contention-aware manager.
//!
//! Run with: `cargo run --release --example quickstart`

use nvdimm_hsm::core::{NodeConfig, NodeSim, PolicyKind};
use nvdimm_hsm::workload::hibench::{profile, Benchmark};
use nvdimm_hsm::workload::SpecProgram;

fn main() {
    // A laptop-scale node: 1 GiB NVDIMM (Table 4 timing), 2 GiB SSD,
    // 4 GiB HDD, managed with BCA + lazy migration + architectural
    // optimization, next to a 429.mcf-like memory hog.
    let mut cfg = NodeConfig::small();
    cfg.policy = PolicyKind::BcaLazyArch;
    cfg.spec = Some(SpecProgram::Mcf429);

    let mut sim = NodeSim::new(cfg, 42);
    for bench in [Benchmark::Sort, Benchmark::Pagerank, Benchmark::Bayes] {
        let p = profile(bench);
        let scaled = p.working_set_blocks / 16;
        let id = sim.add_workload(p.with_working_set(scaled));
        println!("placed {bench:?} as {id}");
    }

    let report = sim.run_secs(4);

    println!("\n== after 4 virtual seconds ==");
    println!("requests served : {}", report.io_count);
    println!("mean latency    : {:.1} µs", report.mean_latency_us);
    println!(
        "migrations      : {} started, {} completed",
        report.migrations_started, report.migrations_completed
    );
    for d in &report.devices {
        println!(
            "  {:6} node{} — {:6} IOs @ {:8.1} µs",
            d.kind.to_string(),
            d.node,
            d.io_count,
            d.mean_latency_us
        );
    }
    println!("\nNVDIMM latency per epoch (µs):");
    let series: Vec<String> = report
        .nvdimm_latency_series
        .iter()
        .map(|l| format!("{l:.0}"))
        .collect();
    println!("  {}", series.join(" "));
    println!("bus utilization per epoch:");
    let util: Vec<String> = report
        .bus_utilization_series
        .iter()
        .map(|u| format!("{u:.2}"))
        .collect();
    println!("  {}", util.join(" "));
}
