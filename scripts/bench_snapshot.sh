#!/usr/bin/env bash
# Produces BENCH_driver.json: criterion results for the driver and
# datapath benches plus an end-to-end serial-vs-parallel timing of the
# fig12 experiment harness.
#
# Usage: scripts/bench_snapshot.sh [output.json]
#
# The end-to-end section runs `experiments fig12 --quick` twice — once with
# --jobs 1 and once at the machine's available parallelism — and records
# wall-clock for each plus the speedup ratio. On a single-core host the
# ratio is ~1.0 by construction; the snapshot records `cores` so readers
# can interpret it.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_driver.json}
CRIT_JSON=$(mktemp)
DP_JSON=$(mktemp)
trap 'rm -f "$CRIT_JSON" "$DP_JSON"' EXIT

echo "== building release binaries" >&2
cargo build --release -q -p nvhsm-experiments

echo "== running driver criterion bench" >&2
CRITERION_JSON_OUT=$CRIT_JSON cargo bench -q -p nvhsm-bench --bench driver >&2

echo "== running datapath criterion bench" >&2
CRITERION_JSON_OUT=$DP_JSON cargo bench -q -p nvhsm-bench --bench datapath >&2

wall_ms() {
    local start end
    start=$(date +%s%N)
    "$@" > /dev/null
    end=$(date +%s%N)
    echo $(( (end - start) / 1000000 ))
}

echo "== timing experiments fig12 --quick end to end" >&2
CORES=$(nproc)
SERIAL_MS=$(wall_ms ./target/release/experiments fig12 --quick --jobs 1)
PARALLEL_MS=$(wall_ms ./target/release/experiments fig12 --quick --jobs "$CORES")
echo "   jobs=1: ${SERIAL_MS} ms, jobs=${CORES}: ${PARALLEL_MS} ms" >&2

jq -n \
    --slurpfile crit "$CRIT_JSON" \
    --slurpfile datapath "$DP_JSON" \
    --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg rustc "$(rustc --version)" \
    --argjson cores "$CORES" \
    --argjson serial_ms "$SERIAL_MS" \
    --argjson parallel_ms "$PARALLEL_MS" \
    '{
        snapshot: "driver",
        date: $date,
        rustc: $rustc,
        cores: $cores,
        criterion: $crit[0],
        datapath: $datapath[0],
        end_to_end: {
            experiment: "fig12 --quick",
            serial_ms: $serial_ms,
            parallel_ms: $parallel_ms,
            jobs_parallel: $cores,
            speedup: (if $parallel_ms > 0
                      then ($serial_ms / $parallel_ms * 100 | round / 100)
                      else null end)
        },
        notes: [
            "grid_16_jobs_all vs grid_16_jobs1 and the end_to_end speedup scale with `cores`; on a 1-core host both are ~1.0.",
            "single_scenario_quick_8sim_s covers 8 simulated seconds: ns_per_iter / 8000 = ns per simulated millisecond.",
            "event_queue_pop_due_1k and event_queue_drain_due_1k run the calendar queue that ships; the matching *_heap rows run the retired BinaryHeap queue on the identical schedule — the before side of the pair (DESIGN.md section 13).",
            "predict_memo_64x8 vs predict_uncached_64x8: the memo is size-gated (MEMO_MIN_LEAVES) and the per-kind tables are dense arrays, so the small pretrained trees take the direct-walk path; the pair now measures gate + dispatch overhead, not the retired always-memo regression.",
            "predict_online_64x8 runs the same 64 probes through OnlineModels with a fitted residual correction installed (base walk + flattened constant-leaf correction walk); its perf budget holds it within 25% of predict_memo_64x8 (DESIGN.md section 16).",
            "bus_slowdown_lut_1k vs bus_slowdown_exact_1k and report_build vs report_build_deepcopy are before/after pairs for the kernel optimizations.",
            "datapath/local_bare matches management/one_virtual_second/BCA+lazy (same workload, seed 7): compare across commits to track the staged-pipeline refactor. local_instrumented adds fault gate + null trace + metrics; remote_mirror adds the stage-3 NIC hops.",
            "placement_scan_1k_sharded vs placement_scan_1k_flat run one arriving-VMDK placement over the same warm 1,000-node (3,000-store) serving fleet through the sharded engine (home shard + summary table) and the flat Manager (full Eq. 4 scan) — the O(shard) vs O(cluster) pair (DESIGN.md section 15). shard_summaries_3k_stores is the summary-table build the spill path pays.",
            "scripts/perf_gate.sh compares fresh medians against scripts/perf_budgets.json (derived from this file); kernel-class benches hard-fail at +25%, wall-class benches warn."
        ]
    }' > "$OUT"

echo "== wrote $OUT" >&2
