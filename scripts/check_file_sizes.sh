#!/usr/bin/env bash
# Fail if any Rust source file in the workspace crates exceeds the line
# budget. The budget exists to keep the PR-5 monolith decomposition from
# regressing: node.rs and manager.rs once grew past 2,000 lines each, and
# files that size stop getting read before they get edited.
#
# Usage: scripts/check_file_sizes.sh [limit]   (default 900)
set -euo pipefail
cd "$(dirname "$0")/.."

LIMIT="${1:-900}"
status=0
while IFS= read -r -d '' f; do
    lines=$(wc -l <"$f")
    if [ "$lines" -gt "$LIMIT" ]; then
        echo "FAIL: $f has $lines lines (limit $LIMIT)" >&2
        status=1
    fi
done < <(find crates -path '*/src/*' -name '*.rs' -print0)

if [ "$status" -ne 0 ]; then
    echo "Split oversized files into focused modules (see DESIGN.md §12)." >&2
else
    echo "OK: no crate source file exceeds $LIMIT lines."
fi
exit "$status"
