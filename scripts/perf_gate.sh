#!/usr/bin/env bash
# CI perf-budget gate.
#
# Re-runs the driver and datapath criterion benches and compares each
# bench's median ns/iter against the budgets checked in at
# scripts/perf_budgets.json (derived from the BENCH_driver.json snapshot
# medians). Each bench carries a class:
#
#   kernel  deterministic ns/op kernels: a median above
#           budget_ns * rel_threshold (1.25 = +25%) FAILS the build.
#   wall    wall-clock-shaped benches (grid fan-out, whole scenarios, the
#           ms-per-iter datapath macro benches): advisory on the 1-core
#           CI host — over budget prints a warning, never a failure.
#
# Repeat/warmup semantics: the criterion harness calibrates an iteration
# count during an untimed warmup, then times 10 samples and reports the
# median, so one gate run already discards warmup and repeats >= 5 times
# per bench.
#
# Usage:
#   scripts/perf_gate.sh                  run the gate
#   scripts/perf_gate.sh --update-budgets rewrite scripts/perf_budgets.json
#                                         from the BENCH_driver.json medians
#                                         (refresh BENCH_driver.json first
#                                         via scripts/bench_snapshot.sh)
set -euo pipefail
cd "$(dirname "$0")/.."

BUDGETS=scripts/perf_budgets.json

if [[ "${1:-}" == "--update-budgets" ]]; then
    jq '{
        policy: {
            source: "BENCH_driver.json medians; refresh via scripts/bench_snapshot.sh then scripts/perf_gate.sh --update-budgets",
            rel_threshold: 1.25,
            classes: {
                kernel: "hard-fail when the measured median exceeds budget_ns * rel_threshold",
                wall: "advisory warn only: wall-clock / parallelism benches are noise- and core-count-sensitive on the 1-core CI host"
            }
        },
        budgets: ([.criterion.benchmarks[], .datapath.benchmarks[]]
            | map({
                id,
                class: (if (.id | test("grid_16|single_scenario|^datapath/")) then "wall" else "kernel" end),
                budget_ns: (.ns_per_iter | round)
            }))
    }' BENCH_driver.json > "$BUDGETS"
    echo "== wrote $BUDGETS from BENCH_driver.json" >&2
    exit 0
fi

CRIT_JSON=$(mktemp)
DP_JSON=$(mktemp)
trap 'rm -f "$CRIT_JSON" "$DP_JSON"' EXIT

echo "== perf gate: running driver bench" >&2
CRITERION_JSON_OUT=$CRIT_JSON cargo bench -q -p nvhsm-bench --bench driver >&2
echo "== perf gate: running datapath bench" >&2
CRITERION_JSON_OUT=$DP_JSON cargo bench -q -p nvhsm-bench --bench datapath >&2

# One row per budgeted bench: ok / WARN (wall over budget) / FAIL (kernel
# over budget) / MISSING (bench disappeared — also a failure, so a deleted
# bench can't silently retire its budget).
REPORT=$(jq -n --slurpfile a "$CRIT_JSON" --slurpfile b "$DP_JSON" --slurpfile bud "$BUDGETS" '
    ($bud[0].policy.rel_threshold) as $rel
    | ([$a[0].benchmarks[], $b[0].benchmarks[]]
       | map({(.id): .ns_per_iter}) | add) as $m
    | [$bud[0].budgets[]
       | ($m[.id]) as $ns
       | if $ns == null then
             {id, class, status: "MISSING", ns: null, budget_ns, ratio: null}
         else
             {id, class, ns: ($ns | round), budget_ns,
              ratio: (($ns / .budget_ns * 100 | round) / 100),
              status: (if $ns <= .budget_ns * $rel then "ok"
                       elif .class == "kernel" then "FAIL"
                       else "WARN" end)}
         end]')

echo "$REPORT" | jq -r '.[] | [.status, .class, .id, (.ns // "-"), .budget_ns, (.ratio // "-")] | @tsv' \
    | awk -F'\t' 'BEGIN { printf "%-8s %-7s %-50s %14s %14s %7s\n", "status", "class", "bench", "ns/iter", "budget_ns", "ratio" }
                  { printf "%-8s %-7s %-50s %14s %14s %7s\n", $1, $2, $3, $4, $5, $6 }'

# Benches without a budget are called out so new benches get one.
echo "$REPORT" | jq -r --slurpfile a "$CRIT_JSON" --slurpfile b "$DP_JSON" '
    [.[].id] as $known
    | [$a[0].benchmarks[], $b[0].benchmarks[]][]
    | select(.id as $i | $known | index($i) | not)
    | "note: \(.id) has no budget — add one via --update-budgets"' >&2

FAILS=$(echo "$REPORT" | jq '[.[] | select(.status == "FAIL" or .status == "MISSING")] | length')
WARNS=$(echo "$REPORT" | jq '[.[] | select(.status == "WARN")] | length')
[[ "$WARNS" -gt 0 ]] && echo "== perf gate: $WARNS wall-clock bench(es) over budget (advisory)" >&2
if [[ "$FAILS" -gt 0 ]]; then
    echo "== perf gate: FAILED — $FAILS kernel bench(es) regressed past budget_ns * rel_threshold" >&2
    exit 1
fi
echo "== perf gate: OK" >&2
