#!/usr/bin/env bash
# Regenerates the golden trace files under tests/golden/ from the current
# simulator behaviour, then replays the harness against the fresh goldens.
#
# Usage: scripts/regen_goldens.sh
#
# Run this to bless an *intended* migration-control-flow change; review the
# resulting `git diff tests/golden` before committing — it shows exactly
# which control-plane events moved. CI regenerates the goldens and fails on
# any uncommitted diff, so stale goldens cannot merge.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== regenerating tests/golden/*.jsonl" >&2
REGEN_GOLDENS=1 cargo test -q --test golden_traces

echo "== verifying a clean replay against the fresh goldens" >&2
cargo test -q --test golden_traces

git --no-pager diff --stat -- tests/golden >&2 || true
echo "== done; review 'git diff tests/golden' before committing" >&2
