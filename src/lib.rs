//! # nvdimm-hsm
//!
//! A from-scratch Rust reproduction of *"Towards Efficient NVDIMM-based
//! Heterogeneous Storage Hierarchy Management for Big Data Workloads"*
//! (MICRO-52, 2019).
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`sim`] — discrete-event simulation kernel (time, events, RNG, stats).
//! * [`mem`] — DDR3 DRAM + shared memory-bus model (the source of the
//!   paper's bus contention).
//! * [`flash`] — NAND flash, page-level FTL with garbage collection, and the
//!   migration-aware controller scheduling policies of §5.3.1.
//! * [`cache`] — LRFU buffer cache and the migration bypass of §5.3.2.
//! * [`device`] — NVDIMM / PCIe-SSD / SATA-HDD storage device models.
//! * [`model`] — the black-box performance model (regression tree over
//!   linear fits) and bus-contention estimator of §4.
//! * [`workload`] — HiBench-like big-data I/O profiles and SPEC-like memory
//!   traffic generators.
//! * [`core`] — the storage manager: bus-contention-aware placement and
//!   balancing, lazy migration, the BASIL/Pesto/LightSRM baselines, and
//!   single-node/cluster simulation loops.
//! * [`fault`] — deterministic fault-injection plans and per-device fault
//!   schedules.
//! * [`obs`] — structured trace events, pluggable sinks, and the metrics
//!   registry (see `tests/golden_traces.rs` for the regression harness).
//!
//! # Quickstart
//!
//! ```
//! use nvdimm_hsm::core::{NodeConfig, NodeSim, PolicyKind};
//! use nvdimm_hsm::workload::hibench;
//!
//! // One server node with NVDIMM + SSD + HDD, running two big-data
//! // workloads under the paper's bus-contention-aware manager.
//! let mut cfg = NodeConfig::small();
//! cfg.policy = PolicyKind::BcaLazy;
//! let mut sim = NodeSim::new(cfg, 42);
//! sim.add_workload(hibench::profile(hibench::Benchmark::Sort));
//! sim.add_workload(hibench::profile(hibench::Benchmark::Bayes));
//! let report = sim.run_secs(2);
//! assert!(report.io_count > 0);
//! ```

pub use nvhsm_cache as cache;
pub use nvhsm_core as core;
pub use nvhsm_device as device;
pub use nvhsm_fault as fault;
pub use nvhsm_flash as flash;
pub use nvhsm_mem as mem;
pub use nvhsm_model as model;
pub use nvhsm_obs as obs;
pub use nvhsm_sim as sim;
pub use nvhsm_workload as workload;
