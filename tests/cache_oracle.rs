//! Differential oracle for the staged buffer cache.
//!
//! The cache stage promises that a *disabled* stage — `cache: None` or a
//! zero-capacity config — is pure absence: every report, every trace
//! event and every metric must come out byte-identical to a build without
//! the stage. These tests pin that promise end to end through the real
//! experiment drivers — the request-level mix (Fig. 12's driver) and the
//! cluster run — comparing serialized reports, rendered JSONL traces and
//! metrics snapshots as strings, not field-by-field, so *any* divergence
//! fails.
//!
//! The control-plane churn driver has no request datapath, so its leg of
//! the oracle pins the other half of the tentpole instead: the
//! [`nvhsm_core::PolicyEngine::observe_heat`] seam. Heat naming only a
//! VMDK the fleet never allocates must be inert through the sharded
//! engine's delegation chain.
//!
//! An enabled stage, by contrast, must actually *change* the run — a
//! sensitivity check that keeps the oracle honest (a dropped config knob
//! would pass the identity legs trivially).

use nvhsm_core::{NodeCacheConfig, PolicyKind};
use nvhsm_experiments::churn::{run_churn, ChurnParams};
use nvhsm_experiments::cluster::{run_cluster_observed, ClusterParams};
use nvhsm_experiments::mix::{run_mix_observed, MixParams};
use nvhsm_experiments::obs::ObsOptions;
use nvhsm_experiments::Scale;
use nvhsm_obs::to_jsonl;

const FULL: ObsOptions = ObsOptions {
    trace: true,
    metrics: true,
};

/// A stage config with everything switched on except capacity: the
/// sharpest disabled configuration (any leak from the stage's plumbing —
/// an event, a counter, a latency change — diverges).
fn disabled_stage() -> NodeCacheConfig {
    NodeCacheConfig {
        capacity_blocks: 0,
        ..NodeCacheConfig::paper_scale()
    }
}

#[test]
fn disabled_cache_mix_is_byte_identical_to_no_cache() {
    let none = MixParams::standard(PolicyKind::Bca);
    let zero = MixParams {
        cache: Some(disabled_stage()),
        ..none
    };
    let (report_a, obs_a) = run_mix_observed(none, Scale::Quick, FULL);
    let (report_b, obs_b) = run_mix_observed(zero, Scale::Quick, FULL);
    assert_eq!(
        serde_json::to_string(&report_a).unwrap(),
        serde_json::to_string(&report_b).unwrap(),
        "zero-capacity cache mix report diverged from no-cache"
    );
    assert_eq!(
        to_jsonl(&obs_a.events),
        to_jsonl(&obs_b.events),
        "zero-capacity cache mix trace diverged from no-cache"
    );
    assert_eq!(
        serde_json::to_string(&obs_a.metrics).unwrap(),
        serde_json::to_string(&obs_b.metrics).unwrap(),
        "zero-capacity cache mix metrics diverged from no-cache"
    );
}

#[test]
fn disabled_cache_cluster_is_byte_identical_to_no_cache() {
    let none = ClusterParams::standard(PolicyKind::Bca);
    let zero = ClusterParams {
        cache: Some(disabled_stage()),
        ..none
    };
    let (report_a, obs_a, _) = run_cluster_observed(none, Scale::Quick, FULL);
    let (report_b, obs_b, _) = run_cluster_observed(zero, Scale::Quick, FULL);
    assert_eq!(
        serde_json::to_string(&report_a).unwrap(),
        serde_json::to_string(&report_b).unwrap(),
        "zero-capacity cache cluster report diverged from no-cache"
    );
    assert_eq!(
        to_jsonl(&obs_a.events),
        to_jsonl(&obs_b.events),
        "zero-capacity cache cluster trace diverged from no-cache"
    );
    assert_eq!(
        serde_json::to_string(&obs_a.metrics).unwrap(),
        serde_json::to_string(&obs_b.metrics).unwrap(),
        "zero-capacity cache cluster metrics diverged from no-cache"
    );
}

#[test]
fn phantom_heat_churn_is_byte_identical() {
    let plain = ChurnParams::standard();
    let heated = ChurnParams {
        phantom_heat: true,
        ..plain
    };
    assert_eq!(
        serde_json::to_string(&run_churn(plain, Scale::Quick)).unwrap(),
        serde_json::to_string(&run_churn(heated, Scale::Quick)).unwrap(),
        "heat for a never-allocated VMDK changed the churn run"
    );
}

#[test]
fn enabled_cache_actually_changes_the_mix() {
    let none = MixParams::standard(PolicyKind::Bca);
    let caching = MixParams {
        cache: Some(NodeCacheConfig::small_test()),
        ..none
    };
    let (report_a, _) = run_mix_observed(none, Scale::Quick, ObsOptions::OFF);
    let (report_b, _) = run_mix_observed(caching, Scale::Quick, ObsOptions::OFF);
    assert_ne!(
        serde_json::to_string(&report_a).unwrap(),
        serde_json::to_string(&report_b).unwrap(),
        "an enabled cache stage left the mix untouched — the knob is dead"
    );
}
