//! Whole-node crash/recovery invariants, swept across crash instants.
//!
//! The contract under test: a node power loss at *any* point of an active
//! migration — including mid-mirrored-write and between cross-node copy
//! rounds — never strands a block (`blocks_lost == 0`). Dirty bits and
//! stale-write invalidations are durable the instant they happen, the
//! journal checkpoint is conservative (restored bits are a subset of truly
//! copied ones, so re-copying is idempotent), and the abort rollback only
//! runs with both endpoints powered.

use nvdimm_hsm::core::{
    DatastoreId, MigrationDecision, MigrationMode, NodeConfig, NodeSim, PolicyKind, RecoveryPolicy,
    VmdkId,
};
use nvdimm_hsm::fault::{NodeFaultPlan, NodeFaultSchedule};
use nvdimm_hsm::sim::{SimDuration, SimTime};
use nvdimm_hsm::workload::hibench::{profile, Benchmark};

fn crash_plan(nodes: usize, crash_node: usize, from_ms: u64, until_ms: u64) -> NodeFaultPlan {
    let schedules = (0..nodes)
        .map(|n| {
            if n == crash_node {
                NodeFaultSchedule::from_outages(vec![(
                    SimTime::from_ms(from_ms),
                    SimTime::from_ms(until_ms),
                )])
            } else {
                NodeFaultSchedule::healthy()
            }
        })
        .collect();
    NodeFaultPlan::from_schedules(schedules, 11)
}

fn crash_cfg(recovery: RecoveryPolicy, plan: NodeFaultPlan) -> NodeConfig {
    let mut cfg = NodeConfig::small();
    cfg.policy = PolicyKind::Bca;
    cfg.train_requests = 30;
    cfg.tau = 1.0; // balancer quiet: the forced migration is the only one
    cfg.node_faults = Some(plan);
    cfg.recovery = recovery;
    cfg
}

/// Sweeps the crash instant across an active single-node migration:
/// before the copy starts, mid-copy (while mirrored writes are landing),
/// and near completion. Every cell of mode × policy × instant must finish
/// with zero lost blocks and at least one processed crash.
#[test]
fn node_crash_at_any_instant_loses_no_blocks() {
    for mode in [MigrationMode::Mirror, MigrationMode::Lazy] {
        for recovery in [RecoveryPolicy::Resume, RecoveryPolicy::Abort] {
            for from_ms in [450, 700, 1100, 2000] {
                let plan = crash_plan(1, 0, from_ms, from_ms + 250);
                let mut sim = NodeSim::new(crash_cfg(recovery, plan), 5);
                sim.add_workload_on(profile(Benchmark::Pagerank).with_working_set(20_000), 2)
                    .expect("the HDD holds the VMDK");
                sim.run(SimDuration::from_ms(400));
                sim.start_migration(MigrationDecision {
                    vmdk: VmdkId(0),
                    src: DatastoreId(2),
                    dst: DatastoreId(1),
                    mode,
                });
                let report = sim.run(SimDuration::from_secs(5));
                assert_eq!(
                    report.blocks_lost, 0,
                    "{mode:?}/{recovery}/crash@{from_ms}ms lost blocks"
                );
                assert!(
                    report.node_crashes >= 1,
                    "{mode:?}/{recovery}/crash@{from_ms}ms: crash never fired"
                );
                assert!(
                    report.replays >= 1,
                    "{mode:?}/{recovery}/crash@{from_ms}ms: no replay ran"
                );
                assert!(
                    report.recovery_time > SimDuration::ZERO,
                    "{mode:?}/{recovery}/crash@{from_ms}ms: zero recovery time"
                );
            }
        }
    }
}

/// Crashes the *destination* node of a cross-node full copy between copy
/// rounds: the journaled bitmap on the destination restores conservatively
/// and the resumed copy still reaches cutover without losing blocks.
#[test]
fn cross_node_dst_crash_loses_no_blocks() {
    for recovery in [RecoveryPolicy::Resume, RecoveryPolicy::Abort] {
        for from_ms in [600, 1000] {
            let plan = crash_plan(2, 1, from_ms, from_ms + 250);
            let mut cfg = crash_cfg(recovery, plan);
            cfg.nic_bandwidth = 50_000_000;
            let mut sim = NodeSim::with_nodes(cfg, 2, 5);
            sim.add_workload_on(profile(Benchmark::Pagerank).with_working_set(2_048), 2)
                .expect("the HDD holds the VMDK");
            sim.run(SimDuration::from_ms(400));
            sim.start_migration(MigrationDecision {
                vmdk: VmdkId(0),
                src: DatastoreId(2), // node 0 HDD
                dst: DatastoreId(4), // node 1 SSD
                mode: MigrationMode::FullCopy,
            });
            let report = sim.run(SimDuration::from_secs(5));
            assert_eq!(
                report.blocks_lost, 0,
                "{recovery}/crash@{from_ms}ms lost blocks"
            );
            assert!(report.node_crashes >= 1, "{recovery}: crash never fired");
            match recovery {
                RecoveryPolicy::Resume => assert!(
                    report.migrations_completed >= 1 || report.migrations_resumed >= 1,
                    "{recovery}/crash@{from_ms}ms: migration neither resumed nor finished"
                ),
                RecoveryPolicy::Abort => assert!(
                    report.migrations_completed + report.migrations_aborted >= 1,
                    "{recovery}/crash@{from_ms}ms: migration neither aborted nor finished"
                ),
            }
        }
    }
}

/// The same crash schedule replayed twice produces the identical report —
/// crash processing and journal replay consume no simulation randomness.
#[test]
fn crash_runs_are_deterministic() {
    let run = || {
        let plan = crash_plan(1, 0, 700, 950);
        let mut sim = NodeSim::new(crash_cfg(RecoveryPolicy::Resume, plan), 5);
        sim.add_workload_on(profile(Benchmark::Pagerank).with_working_set(20_000), 2)
            .expect("the HDD holds the VMDK");
        sim.run(SimDuration::from_ms(400));
        sim.start_migration(MigrationDecision {
            vmdk: VmdkId(0),
            src: DatastoreId(2),
            dst: DatastoreId(1),
            mode: MigrationMode::Mirror,
        });
        let r = sim.run(SimDuration::from_secs(3));
        format!("{r:?}")
    };
    assert_eq!(run(), run());
}
