//! Cross-crate integration: every storage device honours the
//! `StorageDevice` contract.

use nvdimm_hsm::device::{
    DeviceKind, HddConfig, HddDevice, IoOp, IoRequest, NvdimmConfig, NvdimmDevice, SsdConfig,
    SsdDevice, StorageDevice,
};
use nvdimm_hsm::sim::{SimDuration, SimRng, SimTime};

fn devices() -> Vec<Box<dyn StorageDevice>> {
    vec![
        Box::new(NvdimmDevice::new(NvdimmConfig::small_test())),
        Box::new(SsdDevice::new(SsdConfig::small_test())),
        Box::new(HddDevice::new(HddConfig::small_test())),
    ]
}

#[test]
fn completions_never_precede_arrivals() {
    for mut dev in devices() {
        dev.prefill(0..10_000);
        let mut rng = SimRng::new(1);
        let mut t = SimTime::ZERO;
        for _ in 0..300 {
            let op = if rng.chance(0.4) {
                IoOp::Write
            } else {
                IoOp::Read
            };
            let req = IoRequest::normal(0, rng.below(10_000), 1, op, t);
            let c = dev.submit(&req);
            assert!(c.done >= t, "{}", dev.kind());
            assert_eq!(c.latency, c.done - t);
            t += SimDuration::from_us(100);
        }
        assert!(dev.drained_at() >= t - SimDuration::from_us(100));
    }
}

#[test]
fn stats_count_served_requests() {
    for mut dev in devices() {
        dev.prefill(0..1_000);
        for i in 0..50u64 {
            let req = IoRequest::normal(0, i, 1, IoOp::Read, SimTime::from_us(i * 200));
            dev.submit(&req);
        }
        assert_eq!(dev.stats().lifetime_requests(), 50, "{}", dev.kind());
        let epoch = dev.stats_mut().take_epoch(SimTime::from_ms(100));
        assert_eq!(epoch.reads, 50, "{}", dev.kind());
        assert_eq!(epoch.writes, 0, "{}", dev.kind());
    }
}

#[test]
fn migrated_requests_do_not_skew_workload_stats() {
    for mut dev in devices() {
        dev.prefill(0..1_000);
        dev.submit(&IoRequest::normal(0, 0, 1, IoOp::Read, SimTime::ZERO));
        dev.submit(&IoRequest::migrated(9, 1, 1, IoOp::Read, SimTime::ZERO));
        let epoch = dev.stats_mut().take_epoch(SimTime::from_ms(1));
        assert_eq!(epoch.io_count(), 1, "{}", dev.kind());
        assert_eq!(epoch.migrated_ios, 1, "{}", dev.kind());
    }
}

#[test]
fn tier_latency_ordering_holds_for_random_reads() {
    let mut means = Vec::new();
    for mut dev in devices() {
        dev.prefill(0..100_000);
        let mut rng = SimRng::new(3);
        let mut t = SimTime::ZERO;
        let mut sum = 0.0;
        for _ in 0..100 {
            let req = IoRequest::normal(0, rng.below(100_000), 1, IoOp::Read, t);
            let c = dev.submit(&req);
            sum += c.latency.as_us_f64();
            t = c.done;
        }
        means.push((dev.kind(), sum / 100.0));
    }
    assert_eq!(means[0].0, DeviceKind::Nvdimm);
    assert!(
        means[0].1 < means[1].1 && means[1].1 < means[2].1,
        "tier ordering violated: {means:?}"
    );
    // Table 1 magnitudes (scaled model): NVDIMM well under SSD, SSD well
    // under HDD.
    assert!(means[1].1 / means[0].1 > 2.0, "{means:?}");
    assert!(means[2].1 / means[1].1 > 5.0, "{means:?}");
}

#[test]
fn discard_block_forgets_data() {
    for mut dev in devices() {
        dev.prefill(0..100);
        dev.discard_block(5);
        // Contract: no panic, and flash-backed devices free the space.
        if dev.kind() != DeviceKind::Hdd {
            assert!(dev.free_space_ratio() > 0.99, "{}", dev.kind());
        }
    }
}
