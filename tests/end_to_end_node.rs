//! Cross-crate integration: the full node simulation driven through the
//! facade crate's public API.

use nvdimm_hsm::core::{NodeConfig, NodeSim, PolicyKind};
use nvdimm_hsm::workload::hibench::{profile, Benchmark};
use nvdimm_hsm::workload::SpecProgram;

fn quick_cfg(policy: PolicyKind) -> NodeConfig {
    let mut cfg = NodeConfig::small();
    cfg.policy = policy;
    cfg.train_requests = 30;
    cfg
}

fn scaled(b: Benchmark) -> nvdimm_hsm::workload::WorkloadProfile {
    let p = profile(b);
    let blocks = p.working_set_blocks / 16;
    p.with_working_set(blocks)
}

#[test]
fn every_policy_serves_io_end_to_end() {
    for policy in PolicyKind::ALL {
        let mut sim = NodeSim::new(quick_cfg(policy), 3);
        sim.add_workload(scaled(Benchmark::Sort));
        sim.add_workload(scaled(Benchmark::Bayes));
        let report = sim.run_secs(2);
        assert!(report.io_count > 1_000, "{policy}: {}", report.io_count);
        assert!(report.mean_latency_us > 0.0, "{policy}");
        // Per-device IO adds up to the total.
        let sum: u64 = report.devices.iter().map(|d| d.io_count).sum();
        assert_eq!(sum, report.io_count, "{policy}");
    }
}

#[test]
fn same_seed_same_report() {
    let run = || {
        let mut sim = NodeSim::new(quick_cfg(PolicyKind::BcaLazy), 99);
        sim.add_workload(scaled(Benchmark::Pagerank));
        sim.add_workload(scaled(Benchmark::Wordcount));
        sim.run_secs(2)
    };
    let a = run();
    let b = run();
    assert_eq!(a.io_count, b.io_count);
    assert_eq!(a.migrations_started, b.migrations_started);
    assert!((a.mean_latency_us - b.mean_latency_us).abs() < 1e-9);
}

#[test]
fn interference_slows_the_nvdimm() {
    let run = |spec: Option<SpecProgram>| {
        let mut cfg = quick_cfg(PolicyKind::Basil);
        cfg.tau = 1.0; // observation only
        cfg.spec = spec;
        let mut sim = NodeSim::new(cfg, 11);
        sim.add_workload_on(scaled(Benchmark::Bayes), 0).unwrap(); // NVDIMM
        sim.run_secs(2)
    };
    let quiet = run(None);
    let noisy = run(Some(SpecProgram::Mcf429));
    assert!(
        noisy.devices[0].mean_latency_us > quiet.devices[0].mean_latency_us * 1.3,
        "contention effect missing: {} vs {}",
        noisy.devices[0].mean_latency_us,
        quiet.devices[0].mean_latency_us
    );
}

#[test]
fn overloaded_hdd_resident_gets_rescued() {
    let mut cfg = quick_cfg(PolicyKind::Bca);
    cfg.tau = 0.3;
    let mut sim = NodeSim::new(cfg, 5);
    let v = sim.add_workload_on(scaled(Benchmark::Pagerank), 2).unwrap(); // HDD
    sim.run_secs(6);
    let placement = sim.placement_of(v).expect("vmdk exists");
    assert_ne!(placement, 2, "random workload still stranded on the HDD");
}

#[test]
fn cluster_crosses_nodes() {
    let mut sim = NodeSim::with_nodes(quick_cfg(PolicyKind::Pesto), 3, 17);
    let mut placements = std::collections::HashSet::new();
    for b in [
        Benchmark::Sort,
        Benchmark::Bayes,
        Benchmark::Kmeans,
        Benchmark::Pagerank,
        Benchmark::Wordcount,
    ] {
        let v = sim.add_workload(scaled(b));
        placements.insert(sim.placement_of(v).unwrap());
    }
    // Random placement spreads the five VMDKs over several datastores.
    assert!(placements.len() >= 2, "all VMDKs on one datastore");
    let report = sim.run_secs(2);
    assert_eq!(report.devices.len(), 9);
    assert!(report.io_count > 1_000);
}

#[test]
fn metrics_reset_clears_counters_keeps_state() {
    let mut sim = NodeSim::new(quick_cfg(PolicyKind::Basil), 23);
    let v = sim.add_workload(scaled(Benchmark::Sort));
    sim.run_secs(1);
    sim.reset_metrics();
    let report = sim.run_secs(1);
    assert!(report.io_count > 0);
    assert!(sim.placement_of(v).is_some());
}
