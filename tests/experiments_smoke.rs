//! Smoke test: the fast experiment harnesses run end-to-end at quick scale
//! and produce well-formed results. (The heavier management experiments
//! have their own in-crate tests.)

use nvhsm_experiments::{run_experiment, Scale};

#[test]
fn fast_experiments_produce_rows() {
    for id in ["table3", "fig5", "fig14", "fig15"] {
        let result = run_experiment(id, Scale::Quick).expect("known id");
        assert_eq!(result.id, id);
        assert!(!result.rows.is_empty(), "{id} produced no rows");
        assert!(!result.notes.is_empty(), "{id} produced no notes");
        for row in &result.rows {
            assert!(
                row.values.iter().all(|v| v.is_finite()),
                "{id}: non-finite value in {row:?}"
            );
        }
        // Renders without panicking and contains the id.
        assert!(result.render().contains(id));
    }
}

#[test]
fn unknown_experiment_is_an_error() {
    let err = run_experiment("fig99", Scale::Quick).unwrap_err();
    assert!(err.contains("fig99"));
    assert!(err.contains("table2"), "error should list known ids");
}
