//! Golden-trace regression harness.
//!
//! Each scenario drives a deterministic node simulation with a trace sink
//! attached, filters the capture down to the control-plane events (migration
//! phase transitions, mirrored-write fallbacks, evacuations), renders them
//! as JSONL and compares byte-for-byte against a checked-in golden file in
//! `tests/golden/`. The simulator is deterministic, so any diff means the
//! *behaviour* changed — the golden diff shows exactly which migration
//! decision moved.
//!
//! To bless an intended behaviour change, run `scripts/regen_goldens.sh`
//! (or `REGEN_GOLDENS=1 cargo test --test golden_traces`) and commit the
//! updated files; CI regenerates and `git diff --exit-code`s them.

use nvdimm_hsm::core::{
    DatastoreId, MigrationDecision, MigrationMode, NodeCacheConfig, NodeConfig, NodeSim,
    PolicyKind, RecoveryPolicy, VmdkId,
};
use nvdimm_hsm::fault::{
    DeviceFaultSchedule, FaultKind, FaultPlan, FaultWindow, LatentFault, NodeFaultPlan,
    NodeFaultSchedule,
};
use nvdimm_hsm::obs::{drain_ring, shared, to_jsonl, RingSink, TraceEvent};
use nvdimm_hsm::sim::{SimDuration, SimTime};
use nvdimm_hsm::workload::hibench::{profile, Benchmark};
use nvdimm_hsm::workload::WorkloadProfile;
use std::path::PathBuf;

/// Event kinds that form the compact control-plane trace: rare, decision-
/// level transitions (not per-I/O traffic), so goldens stay reviewable.
/// `NetTransfer` is emitted once per cross-node copy round (aggregated),
/// never per block, so it stays golden-sized too. The Cache* kinds are
/// per-request; they only appear in scenarios that enable the cache
/// stage, and those goldens pin a bounded window of the stream.
const CONTROL_KINDS: [&str; 21] = [
    "MigrationStart",
    "MigrationSuspend",
    "MigrationResume",
    "MigrationAbort",
    "MigrationCutover",
    "MirrorFallback",
    "Evacuation",
    "RemoteMigrationStart",
    "NetTransfer",
    "RemoteMigrationCutover",
    "NodeCrash",
    "ReplayStart",
    "ReplayComplete",
    "ScrubRepair",
    "TenantAdmit",
    "TenantRetire",
    "SloViolation",
    "CacheHit",
    "CacheMiss",
    "CacheEvict",
    "CacheBypass",
];

fn control_plane(events: Vec<TraceEvent>) -> Vec<TraceEvent> {
    events
        .into_iter()
        .filter(|e| CONTROL_KINDS.contains(&e.kind()))
        .collect()
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.jsonl"))
}

/// Compares the rendered events against the golden file, or rewrites the
/// golden when `REGEN_GOLDENS` is set.
fn check_golden(name: &str, events: &[TraceEvent]) {
    let path = golden_path(name);
    let rendered = to_jsonl(events);
    if std::env::var_os("REGEN_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nrun scripts/regen_goldens.sh to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered, expected,
        "golden trace {name} diverged — the migration control flow changed.\n\
         If the change is intended, bless it with scripts/regen_goldens.sh"
    );
}

fn quick_cfg(policy: PolicyKind) -> NodeConfig {
    let mut cfg = NodeConfig::small();
    cfg.policy = policy;
    cfg.train_requests = 30;
    cfg
}

/// Builds the shared fault scenario: a Pagerank resident on the HDD, a
/// forced migration HDD → SSD at t=400 ms, and the SSD offline over
/// `outage`. `mode` selects the migration flavour under test.
fn run_outage_scenario(
    mode: MigrationMode,
    outage: (u64, u64),
    abort_grace_ms: Option<u64>,
) -> Vec<TraceEvent> {
    let schedules = vec![
        DeviceFaultSchedule::healthy(),
        DeviceFaultSchedule::from_windows(vec![FaultWindow {
            from: SimTime::from_ms(outage.0),
            until: SimTime::from_ms(outage.1),
            kind: FaultKind::Offline,
        }]),
        DeviceFaultSchedule::healthy(),
    ];
    let mut cfg = quick_cfg(PolicyKind::Bca);
    cfg.faults = Some(FaultPlan::from_schedules(schedules, 3));
    cfg.degraded_cooldown = SimDuration::from_ms(200);
    // Keep the balancer quiet so the forced migration below is the only one
    // in flight — the golden then isolates the fault path under test.
    cfg.tau = 1.0;
    if let Some(ms) = abort_grace_ms {
        cfg.abort_grace = SimDuration::from_ms(ms);
    }
    let mut sim = NodeSim::new(cfg, 5);
    let sink = shared(RingSink::new(1 << 16));
    sim.set_trace_sink(Some(sink.clone()));
    sim.add_workload_on(profile(Benchmark::Pagerank).with_working_set(20_000), 2)
        .expect("the HDD holds the VMDK");
    sim.run(SimDuration::from_ms(400));
    sim.start_migration(MigrationDecision {
        vmdk: VmdkId(0),
        src: DatastoreId(2),
        dst: DatastoreId(1),
        mode,
    });
    sim.run(SimDuration::from_secs(4));
    control_plane(drain_ring(&sink))
}

#[test]
fn golden_resume_from_bitmap() {
    // A short outage (within the abort grace): the lazy migration suspends
    // when the destination rejects its copy writes, resumes from its bitmap
    // once the device recovers, and finishes the cutover.
    let events = run_outage_scenario(MigrationMode::Lazy, (600, 900), None);
    let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
    assert_eq!(kinds.first(), Some(&"MigrationStart"), "{kinds:?}");
    assert!(kinds.contains(&"MigrationSuspend"), "{kinds:?}");
    assert!(kinds.contains(&"MigrationResume"), "{kinds:?}");
    check_golden("resume_from_bitmap", &events);
}

#[test]
fn golden_abort_with_rollback() {
    // A long outage (past the abort grace): the suspended migration is
    // aborted at the next management epoch and its dirty blocks — mirrored
    // writes whose only copy sits at the destination — rolled back to the
    // source. Mirror mode so the 400–600 ms window accumulates dirty blocks.
    let events = run_outage_scenario(MigrationMode::Mirror, (600, 2_400), Some(150));
    let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
    assert_eq!(kinds.first(), Some(&"MigrationStart"), "{kinds:?}");
    assert!(kinds.contains(&"MigrationAbort"), "{kinds:?}");
    let rolled_back = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::MigrationAbort { rolled_back, .. } => Some(*rolled_back),
            _ => None,
        })
        .max()
        .expect("abort event present");
    assert!(rolled_back > 0, "abort rolled nothing back: {events:?}");
    check_golden("abort_with_rollback", &events);
}

#[test]
fn golden_mirror_fallback() {
    // Mirror-mode migration with the destination dropping offline: mirrored
    // writes fail on the destination and fall back to the source copy,
    // suspending the migration instead of losing the write.
    // The outage is timed so a mirrored workload write — not the background
    // copier — is the first I/O to hit the dead destination.
    let events = run_outage_scenario(MigrationMode::Mirror, (650, 950), None);
    let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
    assert_eq!(kinds.first(), Some(&"MigrationStart"), "{kinds:?}");
    assert!(kinds.contains(&"MirrorFallback"), "{kinds:?}");
    assert!(kinds.contains(&"MigrationSuspend"), "{kinds:?}");
    check_golden("mirror_fallback", &events);
}

#[test]
fn golden_cross_node_migration() {
    // A forced full-copy migration between nodes: the golden pins the whole
    // remote sequence — RemoteMigrationStart, one aggregated NetTransfer per
    // copy round over the modeled NIC, RemoteMigrationCutover with the total
    // bytes the move put on the wire.
    let mut cfg = quick_cfg(PolicyKind::Bca);
    cfg.tau = 1.0; // balancer quiet: the forced migration is the only one
    cfg.nic_bandwidth = 50_000_000;
    let mut sim = NodeSim::with_nodes(cfg, 2, 5);
    let sink = shared(RingSink::new(1 << 16));
    sim.set_trace_sink(Some(sink.clone()));
    sim.add_workload_on(profile(Benchmark::Pagerank).with_working_set(2_048), 2)
        .expect("the HDD holds the VMDK");
    sim.run(SimDuration::from_ms(400));
    sim.start_migration(MigrationDecision {
        vmdk: VmdkId(0),
        src: DatastoreId(2),
        dst: DatastoreId(4),
        mode: MigrationMode::FullCopy,
    });
    sim.run(SimDuration::from_secs(4));
    let events = control_plane(drain_ring(&sink));

    let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
    assert!(kinds.contains(&"RemoteMigrationStart"), "{kinds:?}");
    assert!(kinds.contains(&"NetTransfer"), "{kinds:?}");
    assert!(kinds.contains(&"RemoteMigrationCutover"), "{kinds:?}");
    let wire_bytes: u64 = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::NetTransfer { bytes, .. } => Some(*bytes),
            _ => None,
        })
        .sum();
    let cutover_bytes = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::RemoteMigrationCutover { net_bytes, .. } => Some(*net_bytes),
            _ => None,
        })
        .expect("cutover present");
    assert_eq!(
        wire_bytes, cutover_bytes,
        "cutover byte count disagrees with the transfers it summarizes"
    );
    check_golden("cross_node_migration", &events);
}

/// Builds the node-crash scenario: a Pagerank resident on the HDD, a
/// forced Lazy migration HDD → SSD at t=400 ms, and the *whole node*
/// powered off over `outage`. The golden pins the recovery sequence —
/// NodeCrash → ReplayStart → MigrationResume/Abort → ReplayComplete.
fn run_node_crash_scenario(recovery: RecoveryPolicy, outage: (u64, u64)) -> Vec<TraceEvent> {
    let plan = NodeFaultPlan::from_schedules(
        vec![NodeFaultSchedule::from_outages(vec![(
            SimTime::from_ms(outage.0),
            SimTime::from_ms(outage.1),
        )])],
        7,
    );
    let mut cfg = quick_cfg(PolicyKind::Bca);
    cfg.node_faults = Some(plan);
    cfg.recovery = recovery;
    cfg.tau = 1.0; // balancer quiet: the forced migration is the only one
    let mut sim = NodeSim::new(cfg, 5);
    let sink = shared(RingSink::new(1 << 16));
    sim.set_trace_sink(Some(sink.clone()));
    sim.add_workload_on(profile(Benchmark::Pagerank).with_working_set(20_000), 2)
        .expect("the HDD holds the VMDK");
    sim.run(SimDuration::from_ms(400));
    sim.start_migration(MigrationDecision {
        vmdk: VmdkId(0),
        src: DatastoreId(2),
        dst: DatastoreId(1),
        mode: MigrationMode::Lazy,
    });
    sim.run(SimDuration::from_secs(4));
    control_plane(drain_ring(&sink))
}

#[test]
fn golden_node_crash_resume() {
    // Power loss mid-migration: the crash suspends the copy and drops its
    // volatile progress, replay restores the journaled bitmap, and the
    // Resume policy continues the migration to cutover.
    let events = run_node_crash_scenario(RecoveryPolicy::Resume, (600, 900));
    let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
    assert!(kinds.contains(&"NodeCrash"), "{kinds:?}");
    assert!(kinds.contains(&"ReplayStart"), "{kinds:?}");
    assert!(kinds.contains(&"MigrationResume"), "{kinds:?}");
    assert!(kinds.contains(&"ReplayComplete"), "{kinds:?}");
    check_golden("node_crash_resume", &events);
}

#[test]
fn golden_node_crash_abort() {
    // Same crash, Abort policy: replay rolls the suspended migration back
    // to its source instead of resuming the copy.
    let events = run_node_crash_scenario(RecoveryPolicy::Abort, (600, 900));
    let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
    assert!(kinds.contains(&"NodeCrash"), "{kinds:?}");
    assert!(kinds.contains(&"MigrationAbort"), "{kinds:?}");
    assert!(kinds.contains(&"ReplayComplete"), "{kinds:?}");
    assert!(!kinds.contains(&"MigrationCutover"), "{kinds:?}");
    check_golden("node_crash_abort", &events);
}

#[test]
fn golden_scrub_repair() {
    // Latent block faults land on the HDD under an active scrubber: every
    // probe rides the staged datapath and each detection triggers a repair,
    // pinned by the ScrubRepair events.
    // Fracs chosen so every corruption lands inside the 20 000-block VMDK
    // extent at the head of the ~1 Mi-block HDD — latents elsewhere on the
    // device sit outside any resident data and are never probed.
    let latents: Vec<LatentFault> = (0..6)
        .map(|i| LatentFault {
            at: SimTime::from_ms(200 + 50 * i),
            slot: 2,
            frac: 0.001 + 0.003 * i as f64,
        })
        .collect();
    let plan = NodeFaultPlan::from_schedules(
        vec![NodeFaultSchedule::from_outages(Vec::new()).with_latents(latents)],
        7,
    );
    let mut cfg = quick_cfg(PolicyKind::Bca);
    cfg.node_faults = Some(plan);
    cfg.scrub_rate = 4096;
    cfg.tau = 1.0;
    let mut sim = NodeSim::new(cfg, 5);
    let sink = shared(RingSink::new(1 << 16));
    sim.set_trace_sink(Some(sink.clone()));
    sim.add_workload_on(profile(Benchmark::Pagerank).with_working_set(20_000), 2)
        .expect("the HDD holds the VMDK");
    sim.run(SimDuration::from_secs(8));
    let events: Vec<TraceEvent> = control_plane(drain_ring(&sink))
        .into_iter()
        .filter(|e| e.kind() == "ScrubRepair")
        .collect();
    assert!(!events.is_empty(), "scrubber repaired nothing");
    check_golden("scrub_repair", &events);
}

/// Drives a tiny serving-plane scenario: one tenant admitted onto a
/// two-node fleet with an SLO low enough that the very first epoch
/// violates it, held for a few epochs, then retired. The golden pins the
/// full lifecycle — TenantAdmit, its Placements, the single SloViolation
/// onset (later violating epochs are counted, not re-traced) and the
/// TenantRetire carrying the violation total.
fn run_tenant_lifecycle_scenario() -> Vec<TraceEvent> {
    use nvdimm_hsm::core::{ServingConfig, ServingSim};
    use nvdimm_hsm::workload::tenant::{TenantClass, TenantSpec, VmdkDemand};

    let mut sim = ServingSim::new(ServingConfig::small(2));
    let sink = shared(RingSink::new(1 << 12));
    sim.set_trace_sink(sink.clone());
    sim.set_now_s(5.0);
    sim.admit_tenant(&TenantSpec {
        tenant: 42,
        home_node: 0,
        slo_us: 50.0, // below any store's baseline: violated immediately
        class: TenantClass::Standard,
        vmdks: vec![
            VmdkDemand {
                blocks: 12_000,
                iops: 120.0,
                wr_ratio: 0.3,
                rd_rand: 0.6,
                wr_rand: 0.4,
                mean_size_blocks: 8.0,
            },
            VmdkDemand {
                blocks: 30_000,
                iops: 40.0,
                wr_ratio: 0.7,
                rd_rand: 0.2,
                wr_rand: 0.8,
                mean_size_blocks: 16.0,
            },
        ],
    })
    .expect("the fresh fleet admits the tenant");
    for _ in 0..3 {
        sim.run_epoch();
    }
    sim.retire_tenant(42);
    drain_ring(&sink)
        .into_iter()
        .filter(|e| {
            matches!(
                e.kind(),
                "TenantAdmit" | "Placement" | "SloViolation" | "TenantRetire"
            )
        })
        .collect()
}

#[test]
fn golden_tenant_lifecycle() {
    let events = run_tenant_lifecycle_scenario();
    let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
    assert_eq!(kinds.first(), Some(&"TenantAdmit"), "{kinds:?}");
    assert_eq!(kinds.last(), Some(&"TenantRetire"), "{kinds:?}");
    assert_eq!(
        kinds.iter().filter(|k| **k == "Placement").count(),
        2,
        "{kinds:?}"
    );
    assert_eq!(
        kinds.iter().filter(|k| **k == "SloViolation").count(),
        1,
        "persistent violation must trace its onset exactly once: {kinds:?}"
    );
    let violations = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::TenantRetire { violations, .. } => Some(*violations),
            _ => None,
        })
        .expect("retire event present");
    assert_eq!(violations, 3, "three violating epochs before retirement");
    check_golden("tenant_lifecycle", &events);
}

/// Builds the staged-cache sweep scenario: a small zipf-hot workload
/// sharing the NVDIMM with a cold VMDK, the cache warmed, then the cold
/// VMDK forcibly swept off the device. With the structural bypass the
/// sweep's reads ride the Migrated class — the trace shows MigrationStart
/// followed by CacheBypass for every swept block while the hot workload
/// keeps hitting; without it the same sweep floods the cache and the
/// trace becomes an eviction storm.
fn run_cache_sweep_scenario(bypass: bool) -> Vec<TraceEvent> {
    let mut cfg = quick_cfg(PolicyKind::Bca);
    cfg.tau = 1.0; // balancer quiet: the forced sweep is the only migration
    cfg.cache = Some(NodeCacheConfig {
        capacity_blocks: 512,
        sweep_bypass: bypass,
        ..NodeCacheConfig::paper_scale()
    });
    let mut sim = NodeSim::new(cfg, 5);
    let sink = shared(RingSink::new(1 << 16));
    sim.set_trace_sink(Some(sink.clone()));
    let hot = WorkloadProfile {
        name: "hot".into(),
        wr_ratio: 0.1,
        rd_rand: 1.0,
        wr_rand: 1.0,
        mean_size_blocks: 1.0,
        max_size_blocks: 1,
        iops: 400.0,
        working_set_blocks: 256,
        zipf_theta: 0.9,
        phase_period_s: 0.0,
        phase_amplitude: 0.0,
    };
    sim.add_workload_on(hot.clone(), 0)
        .expect("the NVDIMM holds the hot working set");
    let cold = WorkloadProfile {
        name: "cold".into(),
        iops: 1.0,
        working_set_blocks: 2_000,
        zipf_theta: 0.0,
        ..hot
    };
    sim.add_workload_on(cold, 0)
        .expect("the NVDIMM holds the cold VMDK");
    sim.run(SimDuration::from_ms(400)); // warm the cache
    sim.start_migration(MigrationDecision {
        vmdk: VmdkId(1),
        src: DatastoreId(0),
        dst: DatastoreId(2),
        mode: MigrationMode::FullCopy,
    });
    sim.run(SimDuration::from_secs(2));
    control_plane(drain_ring(&sink))
}

/// How much of the per-request cache stream each golden pins: enough to
/// show the MigrationStart → CacheBypass/CacheHit interleaving (or the
/// miss/evict storm) while keeping the golden reviewable.
const CACHE_GOLDEN_WINDOW: usize = 40;

#[test]
fn golden_cache_sweep_bypass() {
    let events = run_cache_sweep_scenario(true);
    let start = events
        .iter()
        .position(|e| e.kind() == "MigrationStart")
        .expect("forced sweep must start");
    let sweep = &events[start..];
    let kinds: Vec<&str> = sweep.iter().map(|e| e.kind()).collect();
    let bypassed = kinds.iter().filter(|k| **k == "CacheBypass").count();
    assert!(
        bypassed >= 2_000,
        "every swept block rides the bypass class: {bypassed}"
    );
    assert_eq!(
        kinds.iter().filter(|k| **k == "CacheEvict").count(),
        0,
        "a bypassed sweep must leave the cache contents untouched"
    );
    // The structural claim: the hot working set still hits after the
    // sweep's final bypassed read — nothing got flushed.
    let last_bypass = kinds
        .iter()
        .rposition(|k| *k == "CacheBypass")
        .expect("bypass events present");
    assert!(
        kinds[last_bypass..].contains(&"CacheHit"),
        "hot working set stopped hitting after the sweep"
    );
    check_golden(
        "cache_sweep_bypass",
        &sweep[..CACHE_GOLDEN_WINDOW.min(sweep.len())],
    );
}

#[test]
fn golden_cache_eviction_storm() {
    let events = run_cache_sweep_scenario(false);
    let start = events
        .iter()
        .position(|e| e.kind() == "MigrationStart")
        .expect("forced sweep must start");
    let sweep = &events[start..];
    let kinds: Vec<&str> = sweep.iter().map(|e| e.kind()).collect();
    assert_eq!(
        kinds.iter().filter(|k| **k == "CacheBypass").count(),
        0,
        "no bypass class without the structural bypass"
    );
    let evictions = kinds.iter().filter(|k| **k == "CacheEvict").count();
    assert!(
        evictions > 500,
        "a non-bypassed sweep floods a 512-block cache: {evictions} evictions"
    );
    check_golden(
        "cache_eviction_storm",
        &sweep[..CACHE_GOLDEN_WINDOW.min(sweep.len())],
    );
}

#[test]
fn golden_traces_are_deterministic() {
    // The premise of the harness: replaying a scenario reproduces the
    // byte-identical event sequence.
    let a = to_jsonl(&run_outage_scenario(MigrationMode::Lazy, (600, 900), None));
    let b = to_jsonl(&run_outage_scenario(MigrationMode::Lazy, (600, 900), None));
    assert_eq!(a, b);
}
