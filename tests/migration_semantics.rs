//! Cross-crate integration: migration correctness — routing during
//! mirror/lazy migrations, completion bookkeeping, capacity accounting.

use nvdimm_hsm::core::{
    Bitmap, Datastore, DatastoreId, MigrationMode, NodeConfig, NodeSim, PolicyKind, VmdkId,
};
use nvdimm_hsm::device::{HddConfig, HddDevice};
use nvdimm_hsm::workload::hibench::{profile, Benchmark};

#[test]
fn datastore_capacity_is_conserved_across_migration_cycles() {
    let mut ds = Datastore::new(
        DatastoreId(0),
        Box::new(HddDevice::new(HddConfig::small_test())),
        0,
    );
    let cap = ds.capacity_blocks();
    for round in 0..50 {
        let id = VmdkId(round);
        ds.place(id, 1000).expect("fits");
        assert_eq!(ds.used_blocks(), 1000);
        ds.remove(id);
        assert_eq!(ds.used_blocks(), 0);
    }
    assert_eq!(ds.largest_free_extent(), cap);
}

#[test]
fn bitmap_partitions_the_vmdk_exactly() {
    let mut b = Bitmap::new(10_000);
    for i in (0..10_000).step_by(3) {
        b.set(i);
    }
    let set = b.count_set();
    let mut clear = 0;
    let mut cursor = 0;
    while let Some(i) = b.next_clear(cursor) {
        b.set(i);
        clear += 1;
        cursor = i;
    }
    assert_eq!(set + clear, 10_000);
    assert!(b.complete());
}

#[test]
fn migration_moves_placement_and_frees_source() {
    let mut cfg = NodeConfig::small();
    cfg.policy = PolicyKind::Bca;
    cfg.train_requests = 30;
    cfg.tau = 0.3;
    let mut sim = NodeSim::new(cfg, 5);
    let p = profile(Benchmark::Pagerank);
    let blocks = p.working_set_blocks / 16;
    let p = p.with_working_set(blocks);
    let v = sim.add_workload_on(p, 2).unwrap(); // start on the HDD
    let report = sim.run_secs(6);
    assert!(report.migrations_completed >= 1, "{report:?}");
    let ds = sim.placement_of(v).expect("alive");
    assert_ne!(ds, 2);
    // Exactly one residency after completion.
    let hosts: Vec<usize> = (0..sim.datastores().len())
        .filter(|&i| sim.datastores()[i].hosts(v))
        .collect();
    assert_eq!(hosts, vec![ds]);
}

#[test]
fn lazy_migration_mirrors_writes() {
    let mut cfg = NodeConfig::small();
    cfg.policy = PolicyKind::BcaLazy;
    cfg.train_requests = 30;
    cfg.tau = 0.3;
    let mut sim = NodeSim::new(cfg, 5);
    // A write-heavy workload stranded on the HDD: once the lazy migration
    // starts, its writes mirror to the destination.
    let p = profile(Benchmark::NutchIndexing);
    let blocks = p.working_set_blocks / 16;
    let p = p.with_working_set(blocks);
    sim.add_workload_on(p, 2).unwrap();
    let report = sim.run_secs(6);
    assert!(
        report.migrations_started >= 1,
        "no migration started: {report:?}"
    );
    assert!(
        report.mirrored_blocks > 0,
        "lazy migration mirrored nothing: {report:?}"
    );
}

#[test]
fn migration_modes_match_policies() {
    use nvdimm_hsm::core::pretrain_models;
    use nvdimm_hsm::core::Manager;
    let models = pretrain_models(30, 3);
    let m = Manager::new(PolicyKind::LightSrm, 0.5, models);
    assert!(m.policy().mirroring());
    assert!(!m.policy().lazy_copy());
    let _ = MigrationMode::Mirror;
}
