//! Cross-crate integration: the §4 model pipeline — train on synthetic
//! contention-free workloads, predict live device behaviour, isolate bus
//! contention (the Fig. 7 property).

use nvdimm_hsm::core::pretrain_models;
use nvdimm_hsm::device::{DeviceKind, IoOp, IoRequest, NvdimmConfig, NvdimmDevice, StorageDevice};
use nvdimm_hsm::model::{ContentionEstimator, Features};
use nvdimm_hsm::sim::{SimDuration, SimRng, SimTime};

fn epoch_features(
    stats: &nvdimm_hsm::device::EpochStats,
    free_space: f64,
    baseline_us: f64,
) -> Features {
    Features {
        wr_ratio: stats.wr_ratio(),
        // Issue concurrency: latency-derived OIO would leak contention
        // into the feature vector.
        oios: stats.oio_at(baseline_us),
        ios: stats.mean_ios_blocks(),
        wr_rand: stats.wr_rand(),
        rd_rand: stats.rd_rand(),
        free_space_ratio: free_space,
    }
}

/// Drives one epoch of a mixed workload; returns (features, measured µs).
fn drive_epoch(
    dev: &mut NvdimmDevice,
    rng: &mut SimRng,
    start: SimTime,
    util: f64,
    baseline_us: f64,
) -> (Features, f64) {
    dev.set_ambient_bus_utilization(util);
    let mut t = start;
    let end = start + SimDuration::from_ms(200);
    while t < end {
        let block = rng.below(30_000);
        let op = if rng.chance(0.3) {
            IoOp::Write
        } else {
            IoOp::Read
        };
        dev.submit(&IoRequest::normal(0, block, 1, op, t));
        t += SimDuration::from_us(300);
    }
    let stats = dev.stats_mut().take_epoch(end);
    let f = epoch_features(&stats, dev.free_space_ratio(), baseline_us);
    (f, stats.mean_latency_us())
}

#[test]
fn model_tracks_contention_free_behaviour() {
    let models = pretrain_models(60, 7);
    let model = models.model(DeviceKind::Nvdimm);
    let mut dev = NvdimmDevice::new(NvdimmConfig::small_test());
    dev.prefill(0..30_000);
    let mut rng = SimRng::new(9);
    let mut t = SimTime::ZERO;
    let baseline = models.baseline_us(DeviceKind::Nvdimm);
    let mut total_err = 0.0;
    let mut n = 0.0;
    for _ in 0..10 {
        let (f, measured) = drive_epoch(&mut dev, &mut rng, t, 0.0, baseline);
        t += SimDuration::from_ms(200);
        let predicted = model.predict(&f);
        total_err += ((predicted - measured) / measured).abs();
        n += 1.0;
    }
    let mape = total_err / n;
    assert!(
        mape < 0.35,
        "contention-free model error {:.0}%",
        mape * 100.0
    );
}

#[test]
fn contention_estimate_rises_with_bus_utilization() {
    let models = pretrain_models(60, 7);
    let model = models.model(DeviceKind::Nvdimm);
    let mut dev = NvdimmDevice::new(NvdimmConfig::small_test());
    dev.prefill(0..30_000);
    let mut rng = SimRng::new(13);
    let mut estimator = ContentionEstimator::new();
    let mut t = SimTime::ZERO;

    let baseline = models.baseline_us(DeviceKind::Nvdimm);
    let mut bc_by_util = Vec::new();
    for &util in &[0.0, 0.4, 0.8] {
        let mut acc = 0.0;
        for _ in 0..4 {
            let (f, measured) = drive_epoch(&mut dev, &mut rng, t, util, baseline);
            t += SimDuration::from_ms(200);
            acc += estimator.observe(model, &f, measured);
        }
        bc_by_util.push(acc / 4.0);
    }
    assert!(
        bc_by_util[2] > bc_by_util[1] && bc_by_util[1] > bc_by_util[0],
        "BC not increasing with utilization: {bc_by_util:?}"
    );
    assert!(
        bc_by_util[2] > 50.0,
        "BC at heavy traffic too small: {bc_by_util:?}"
    );
    assert!(estimator.epochs() == 12);
}

#[test]
fn tier_characteristics_ordered() {
    let models = pretrain_models(40, 21);
    let nv = models.baseline_us(DeviceKind::Nvdimm);
    let ssd = models.baseline_us(DeviceKind::Ssd);
    let hdd = models.baseline_us(DeviceKind::Hdd);
    assert!(
        nv < ssd && ssd < hdd,
        "tiers out of order: {nv} {ssd} {hdd}"
    );
    // Streaming unit costs: SSD readahead hides NAND reads behind the
    // controller path; the HDD streams at the media rate.
    assert!(models.seq_block_us(DeviceKind::Hdd) < 1_000.0);
}
