//! Randomized cross-crate invariants: arbitrary policy/workload/seed
//! combinations must keep the node simulation internally consistent.

use nvdimm_hsm::core::{NodeConfig, NodeSim, PolicyKind};
use nvdimm_hsm::workload::hibench::{profile, Benchmark};
use proptest::prelude::*;

fn policy_from(idx: u8) -> PolicyKind {
    PolicyKind::ALL[idx as usize % PolicyKind::ALL.len()]
}

fn benchmark_from(idx: u8) -> Benchmark {
    Benchmark::ALL[idx as usize % Benchmark::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any policy, seed, and workload subset:
    /// * per-device I/O sums to the report total,
    /// * every VMDK stays resident on exactly one datastore when no
    ///   migration is in flight,
    /// * migration counters are consistent,
    /// * the run is deterministic under its seed.
    #[test]
    fn node_sim_invariants(
        policy_idx in 0u8..6,
        seed in 0u64..1_000,
        bench_idxs in proptest::collection::vec(0u8..8, 1..4),
    ) {
        let build = || {
            let mut cfg = NodeConfig::small();
            cfg.policy = policy_from(policy_idx);
            cfg.train_requests = 25;
            cfg.tau = 0.4;
            let mut sim = NodeSim::new(cfg, seed);
            let mut ids = Vec::new();
            for &bi in &bench_idxs {
                let p = profile(benchmark_from(bi));
                let blocks = (p.working_set_blocks / 32).max(512);
                ids.push(sim.add_workload(p.with_working_set(blocks)));
            }
            (sim, ids)
        };

        let (mut sim, ids) = build();
        let report = sim.run_secs(2);

        let device_sum: u64 = report.devices.iter().map(|d| d.io_count).sum();
        prop_assert_eq!(device_sum, report.io_count);
        prop_assert!(report.migrations_completed <= report.migrations_started);
        prop_assert!(report.mean_latency_us >= 0.0);

        // Residency: each VMDK lives on its reported placement; dual
        // residency only while a migration is active.
        for &v in &ids {
            let placement = sim.placement_of(v);
            prop_assert!(placement.is_some());
            let hosts = (0..sim.datastores().len())
                .filter(|&i| sim.datastores()[i].hosts(v))
                .count();
            if sim.active_migrations() == 0 {
                prop_assert_eq!(hosts, 1, "vmdk {:?} resident on {} datastores", v, hosts);
            } else {
                prop_assert!((1..=2).contains(&hosts));
            }
        }

        // Determinism.
        let (mut sim2, _) = build();
        let report2 = sim2.run_secs(2);
        prop_assert_eq!(report.io_count, report2.io_count);
        prop_assert_eq!(report.migrations_started, report2.migrations_started);
    }
}
