//! Differential oracle for the online model source.
//!
//! `OnlineModels` promises that learning is *additive*: until a refit
//! actually installs a residual correction, every prediction is the
//! pretrained `DeviceModels` verbatim, and the simulation — placements,
//! migrations, traces, metrics — is byte-identical to the static arm on
//! the same scenario. These tests pin that promise end to end through
//! the real drift experiment driver by configuring online sources that
//! can never refit (an unreachable Page–Hinkley threshold, and a
//! disabled periodic cadence) and comparing rendered JSONL traces,
//! serialized metrics snapshots, and outcome debug strings as strings —
//! so *any* divergence fails.

use nvhsm_core::{OnlineModelConfig, RefitPolicy};
use nvhsm_experiments::drift::{run_drift_observed, DriftParams};
use nvhsm_experiments::obs::ObsOptions;
use nvhsm_experiments::Scale;
use nvhsm_obs::to_jsonl;

const OBSERVED: ObsOptions = ObsOptions {
    trace: true,
    metrics: true,
};

/// Runs one drift arm fully observed and flattens everything comparable
/// into one string.
fn fingerprint(params: DriftParams) -> String {
    let (outcome, obs) = run_drift_observed(params, Scale::Quick, OBSERVED);
    let metrics = obs
        .metrics
        .as_ref()
        .map(|m| serde_json::to_string(m).expect("serializable snapshot"))
        .unwrap_or_default();
    format!(
        "{outcome:?}\ndropped={}\n{}\n{}",
        obs.dropped,
        to_jsonl(&obs.events),
        metrics
    )
}

#[test]
fn unreachable_drift_threshold_is_byte_identical_to_static() {
    // λ beyond any error the scenario can produce: Page–Hinkley never
    // fires, no correction is ever installed, and the run must be
    // indistinguishable from the static pretrained model.
    let frozen = DriftParams {
        online: Some(OnlineModelConfig {
            policy: RefitPolicy::OnDrift,
            lambda_us: 1e18,
            ..OnlineModelConfig::default()
        }),
        seed: 42,
    };
    assert_eq!(
        fingerprint(DriftParams::static_model(42)),
        fingerprint(frozen),
        "a never-refitting online source diverged from the static model"
    );
}

#[test]
fn disabled_periodic_cadence_is_byte_identical_to_static() {
    // `refit_every: 0` documents "periodic refits disabled": the window
    // fills, the detector runs, but no correction may ever install.
    let frozen = DriftParams {
        online: Some(OnlineModelConfig {
            policy: RefitPolicy::Periodic,
            refit_every: 0,
            lambda_us: 1e18,
            ..OnlineModelConfig::default()
        }),
        seed: 42,
    };
    assert_eq!(
        fingerprint(DriftParams::static_model(42)),
        fingerprint(frozen),
        "a disabled-cadence online source diverged from the static model"
    );
}

#[test]
fn learning_arm_actually_diverges_from_static() {
    // Sanity check on the oracle itself: with a reachable threshold the
    // online arm must refit and change the run — otherwise the two
    // byte-identity tests above would pass vacuously.
    let (static_outcome, _) =
        run_drift_observed(DriftParams::static_model(42), Scale::Quick, ObsOptions::OFF);
    let (online_outcome, _) =
        run_drift_observed(DriftParams::on_drift(42), Scale::Quick, ObsOptions::OFF);
    assert!(
        online_outcome.refits >= 1,
        "learning arm never refit: {online_outcome:?}"
    );
    assert_eq!(static_outcome.refits, 0, "{static_outcome:?}");
    assert_ne!(
        format!("{static_outcome:?}"),
        format!("{online_outcome:?}"),
        "the learning arm should produce a different run than static"
    );
}
