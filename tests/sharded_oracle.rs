//! Differential oracle for the sharded policy engine.
//!
//! `ShardedPolicyEngine` promises that a *single* shard is pure
//! delegation: every placement, every epoch decision and every trace
//! event must come out byte-identical to the unsharded `Manager` on the
//! same scenario. These tests pin that promise end to end through the
//! real experiment drivers — request-level mix and cluster runs, and the
//! control-plane churn run — comparing serialized reports and rendered
//! JSONL traces as strings, not field-by-field, so *any* divergence
//! fails.
//!
//! Multi-shard runs are allowed to differ (that is the point of the
//! approximation); for them the oracle checks the documented contract
//! instead: capacity is never violated and the run completes with a
//! well-formed report.

use nvhsm_core::PolicyKind;
use nvhsm_experiments::churn::{run_churn, ChurnIntensity, ChurnParams};
use nvhsm_experiments::cluster::{run_cluster_observed, ClusterParams};
use nvhsm_experiments::mix::{run_mix_observed, MixParams};
use nvhsm_experiments::obs::ObsOptions;
use nvhsm_experiments::Scale;
use nvhsm_obs::to_jsonl;

const TRACED: ObsOptions = ObsOptions {
    trace: true,
    metrics: false,
};

#[test]
fn one_shard_mix_is_byte_identical_to_unsharded() {
    let flat = MixParams::standard(PolicyKind::Bca);
    let sharded = MixParams {
        shard_nodes: flat.nodes, // one shard spans the whole fleet
        ..flat
    };
    let (report_a, obs_a) = run_mix_observed(flat, Scale::Quick, TRACED);
    let (report_b, obs_b) = run_mix_observed(sharded, Scale::Quick, TRACED);
    assert_eq!(
        serde_json::to_string(&report_a).unwrap(),
        serde_json::to_string(&report_b).unwrap(),
        "one-shard mix report diverged from the unsharded manager"
    );
    assert_eq!(
        to_jsonl(&obs_a.events),
        to_jsonl(&obs_b.events),
        "one-shard mix trace diverged from the unsharded manager"
    );
}

#[test]
fn one_shard_cluster_is_byte_identical_to_unsharded() {
    let flat = ClusterParams::standard(PolicyKind::Bca);
    let sharded = ClusterParams {
        shard_nodes: flat.nodes,
        ..flat
    };
    let (report_a, obs_a, _) = run_cluster_observed(flat, Scale::Quick, TRACED);
    let (report_b, obs_b, _) = run_cluster_observed(sharded, Scale::Quick, TRACED);
    assert_eq!(
        serde_json::to_string(&report_a).unwrap(),
        serde_json::to_string(&report_b).unwrap(),
        "one-shard cluster report diverged from the unsharded manager"
    );
    assert_eq!(
        to_jsonl(&obs_a.events),
        to_jsonl(&obs_b.events),
        "one-shard cluster trace diverged from the unsharded manager"
    );
}

#[test]
fn one_shard_churn_is_byte_identical_to_unsharded() {
    let flat = ChurnParams {
        shard_nodes: 0,
        ..ChurnParams::standard()
    };
    let one = ChurnParams {
        shard_nodes: flat.nodes,
        ..flat
    };
    assert_eq!(
        serde_json::to_string(&run_churn(flat, Scale::Quick)).unwrap(),
        serde_json::to_string(&run_churn(one, Scale::Quick)).unwrap(),
        "one-shard churn report diverged from the unsharded manager"
    );
}

#[test]
fn multi_shard_cluster_completes_with_a_well_formed_report() {
    // Three nodes, one node per shard: the most aggressive sharding the
    // fleet allows. The approximation may change *which* migrations run,
    // but the run must complete and every metric stay finite.
    let params = ClusterParams {
        shard_nodes: 1,
        ..ClusterParams::standard(PolicyKind::Bca)
    };
    let (report, _, _) = run_cluster_observed(params, Scale::Quick, ObsOptions::OFF);
    assert_eq!(report.nodes, 3);
    assert!(report.report.mean_latency_us.is_finite());
    assert!(report.report.mean_latency_us > 0.0);
    for lat in report.per_node_mean_latency_us() {
        assert!(lat.is_finite());
    }
}

#[test]
fn multi_shard_churn_respects_every_capacity_ledger() {
    // A sharded fleet under flash crowds — the admission-heavy path. The
    // report's own accounting must balance: every admitted tenant either
    // retires or is still live, and rejections are all typed (counted).
    let r = run_churn(
        ChurnParams {
            nodes: 12,
            shard_nodes: 3,
            intensity: ChurnIntensity::Flash,
            seed: 7,
            ..ChurnParams::standard()
        },
        Scale::Quick,
    );
    assert!(r.admitted > 0, "flash churn admitted nobody: {r:?}");
    assert_eq!(
        r.admitted,
        r.retired + r.live_tenants,
        "tenants leaked between admit and retire: {r:?}"
    );
    assert!(r.worst_p99_us.is_finite());
}
