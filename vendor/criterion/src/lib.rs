//! Offline subset of the `criterion` benchmarking API used by this
//! workspace. It measures with a warm-up estimate followed by a fixed
//! number of timed samples and reports the median ns/iteration — no
//! statistical analysis, plots, or baselines, but the same source-level
//! API (`Criterion`, `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`,
//! `black_box`, `criterion_group!`, `criterion_main!`).
//!
//! Set `CRITERION_JSON_OUT=<path>` to also write all results from the
//! process as a JSON document (`scripts/bench_snapshot.sh` consumes
//! this to produce `BENCH_*.json` perf snapshots).

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

fn results() -> &'static Mutex<Vec<(String, f64)>> {
    static RESULTS: OnceLock<Mutex<Vec<(String, f64)>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Times a single routine, as passed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the harness-chosen number of iterations,
    /// recording total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifies one parameterized benchmark, e.g. `group/function/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards everything after `--`;
        // ignore flag-like arguments such as `--bench`.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter, samples: 10 }
    }
}

impl Criterion {
    /// Upstream compatibility hook; argument handling happens in
    /// `default()`.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let samples = self.samples;
        if self.matches(id) {
            run_benchmark(id, samples, f);
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), samples: None }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n.max(2));
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.samples.unwrap_or(self.criterion.samples);
        if self.criterion.matches(&full) {
            run_benchmark(&full, samples, f);
        }
        self
    }

    /// Benchmarks `f` with an input value under `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let samples = self.samples.unwrap_or(self.criterion.samples);
        if self.criterion.matches(&full) {
            run_benchmark(&full, samples, |b| f(b, input));
        }
        self
    }

    /// Ends the group (upstream compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // Warm-up pass with one iteration to estimate per-iter cost.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (SAMPLE_TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;

    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];

    println!("{id:<56} {:>14.1} ns/iter ({iters} iters x {samples} samples)", median);
    results().lock().unwrap().push((id.to_string(), median));
}

/// Writes the JSON results document when `CRITERION_JSON_OUT` is set.
/// Called by `criterion_main!` after all groups run.
pub fn finalize() {
    let Ok(path) = std::env::var("CRITERION_JSON_OUT") else {
        return;
    };
    let results = results().lock().unwrap();
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, (id, ns)) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {}}}{}\n",
            id.replace('"', "\\\""),
            ns,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion: failed to write {path}: {e}");
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}
