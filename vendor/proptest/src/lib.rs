//! Offline subset of the `proptest` API used by this workspace.
//!
//! Supports the shapes the in-tree property tests use: the
//! [`Strategy`](strategy::Strategy) trait over numeric ranges, tuples,
//! `bool::ANY`, `collection::vec`, and `.prop_map`; the [`proptest!`]
//! macro with an optional `#![proptest_config(...)]` header; and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` helpers.
//!
//! Unlike upstream proptest there is no shrinking and no persisted
//! failure seeds: each test derives a fixed RNG seed from its full path,
//! so runs are deterministic and reproducible, and a failing case
//! reports the case index in the normal panic message.

pub mod test_runner {
    /// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator seeding each property test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test's full path, so every test
        /// gets a distinct but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `u64` below `bound` (Lemire's method, unbiased enough
        /// for test-case generation).
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            let hi = (u128::from(self.next_u64()) * u128::from(bound)) >> 64;
            hi as u64
        }

        /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values, mirroring `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! impl_uint_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_uint_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )*};
    }

    impl_int_range!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $t;
                    self.start + (self.end - self.start) * unit
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The strategy for arbitrary booleans, as `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with a length drawn from a range, as
    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `cases` random inputs; the body is inlined in
/// the case loop so [`prop_assume!`] can skip a case with `continue`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($tt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}
