//! Offline subset of the `rand` API used by this workspace: the
//! [`RngCore`] trait and its [`Error`] type. `nvhsm-sim::SimRng`
//! implements `RngCore` so downstream code can treat it as a standard
//! random source; nothing in-tree uses rand's generators or
//! distributions.

/// Random-source error, mirroring `rand::Error`.
#[derive(Debug)]
pub struct Error(&'static str);

impl Error {
    /// Builds an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Error(msg)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fills `dest` with random bytes, reporting failure.
    ///
    /// # Errors
    ///
    /// Implementations backed by fallible entropy sources may fail;
    /// deterministic generators never do.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}
