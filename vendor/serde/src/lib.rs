//! Offline subset of the `serde` API used by this workspace.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the thin slice of serde it actually relies on: the
//! `Serialize`/`Deserialize` traits (via a simple self-describing
//! [`Value`] data model rather than serde's visitor machinery) plus the
//! derive macros re-exported from the companion `serde_derive` stub.
//!
//! Semantics match serde's JSON mapping for the shapes this workspace
//! uses: structs become maps, newtype structs are transparent, tuple
//! structs become sequences, unit enum variants become strings, and
//! data-carrying variants are externally tagged.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every `Serialize` impl produces and
/// every `Deserialize` impl consumes. `serde_json` renders and parses it.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer outside the `i64` range.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with string keys, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of a sequence value.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can convert itself into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an error when `v` does not have the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Owned-deserialization alias, mirroring serde's `DeserializeOwned`.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

/// Looks up a required struct field in a map value (derive support).
///
/// # Errors
///
/// Returns an error naming the missing field.
pub fn __get_field<'a>(map: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Int(i) => <$t>::try_from(i)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::UInt(u) => <$t>::try_from(u)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::Float(f) if f.fract() == 0.0 => Ok(f as $t),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 {
                    Value::Int(wide as i64)
                } else {
                    Value::UInt(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Int(i) => <$t>::try_from(i)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::UInt(u) => <$t>::try_from(u)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::Float(f) if f.fract() == 0.0 && f >= 0.0 => Ok(f as $t),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    Value::Float(f) => Ok(f as $t),
                    // serde_json writes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error::custom("wrong array length"))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::custom("expected tuple sequence"))?;
                Ok(($($t::from_value(
                    seq.get($n).ok_or_else(|| Error::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<K: std::fmt::Display, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort by rendered key so serialized output is deterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: std::str::FromStr + std::cmp::Eq + std::hash::Hash,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v.as_map().ok_or_else(|| Error::custom("expected map"))?;
        map.iter()
            .map(|(k, v)| {
                let key = k
                    .parse::<K>()
                    .map_err(|_| Error::custom(format!("bad map key `{k}`")))?;
                Ok((key, V::from_value(v)?))
            })
            .collect()
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
