//! Offline subset of `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for the type shapes this workspace uses —
//! named-field structs, tuple/newtype structs, unit structs, and enums
//! with unit, tuple, or struct variants (externally tagged). No
//! `#[serde(...)]` attributes and no generic parameters are supported;
//! none of the workspace's derive sites need them.
//!
//! The macro hand-parses the item's `TokenStream` (no `syn`/`quote`,
//! since the build environment has no registry access) and emits impls
//! of the vendored `serde::Serialize` / `serde::Deserialize` traits.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::fmt::Write;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated invalid Deserialize impl")
}

enum Fields {
    Unit,
    /// Tuple fields; the arity.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            // Skip `#[...]` attributes (the `#` then the bracket group).
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw != "struct" && kw != "enum" {
                    continue; // visibility keywords etc.
                }
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("serde_derive: expected type name, got {other:?}"),
                };
                // Find the body: a brace/paren group, or `;` for unit structs.
                // Generic parameters are unsupported (and unused in-tree).
                for tt2 in iter.by_ref() {
                    match tt2 {
                        TokenTree::Punct(p) if p.as_char() == '<' => {
                            panic!("serde_derive: generic types are not supported (type `{name}`)")
                        }
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                            let shape = if kw == "struct" {
                                Shape::Struct(Fields::Named(parse_named_fields(&g)))
                            } else {
                                Shape::Enum(parse_variants(&g))
                            };
                            return Item { name, shape };
                        }
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                            return Item {
                                name,
                                shape: Shape::Struct(Fields::Tuple(count_tuple_fields(&g))),
                            };
                        }
                        TokenTree::Punct(p) if p.as_char() == ';' => {
                            return Item { name, shape: Shape::Struct(Fields::Unit) };
                        }
                        _ => {}
                    }
                }
                panic!("serde_derive: no body found for `{name}`");
            }
            _ => {}
        }
    }
    panic!("serde_derive: no struct or enum found in derive input");
}

/// Field names of a `{ ... }` body. Skips attributes and visibility;
/// consumes each field's type up to the next top-level comma, tracking
/// angle-bracket depth so generic argument commas don't split fields.
fn parse_named_fields(g: &Group) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = g.stream().into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "pub" {
                    // Skip a restriction like `pub(crate)`.
                    if matches!(iter.peek(), Some(TokenTree::Group(_))) {
                        iter.next();
                    }
                    continue;
                }
                fields.push(word);
                // Consume `: Type` through the field-separating comma.
                let mut angle = 0i64;
                for tt2 in iter.by_ref() {
                    if let TokenTree::Punct(p) = tt2 {
                        match p.as_char() {
                            '<' => angle += 1,
                            '>' => angle -= 1,
                            ',' if angle == 0 => break,
                            _ => {}
                        }
                    }
                }
            }
            _ => {}
        }
    }
    fields
}

/// Arity of a `( ... )` tuple body: counts non-empty comma-separated
/// segments at angle-depth zero.
fn count_tuple_fields(g: &Group) -> usize {
    let mut arity = 0usize;
    let mut angle = 0i64;
    let mut in_segment = false;
    for tt in g.stream() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if in_segment {
                        arity += 1;
                    }
                    in_segment = false;
                    continue;
                }
                _ => {}
            }
        }
        in_segment = true;
    }
    if in_segment {
        arity += 1;
    }
    arity
}

fn parse_variants(g: &Group) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = g.stream().into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                let fields = match iter.peek() {
                    Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                        let f = Fields::Named(parse_named_fields(vg));
                        iter.next();
                        f
                    }
                    Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                        let f = Fields::Tuple(count_tuple_fields(vg));
                        iter.next();
                        f
                    }
                    _ => Fields::Unit,
                };
                // Consume through the variant separator (covers explicit
                // discriminants like `= 3`).
                while let Some(tt2) = iter.next() {
                    if matches!(&tt2, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
                variants.push(Variant { name, fields });
            }
            _ => {}
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        // Newtype structs are transparent, matching serde_json.
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        );
                    }
                    Fields::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                        );
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Seq(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        );
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(vec![{}]))]),",
                            entries.join(", ")
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => format!("{{ let _ = __v; Ok({name}) }}"),
        Shape::Struct(Fields::Tuple(1)) => {
            format!("::serde::Deserialize::from_value(__v).map({name})")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(__seq.get({i}).ok_or_else(|| ::serde::Error::custom(\"tuple struct `{name}` too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "{{ let __seq = __v.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for `{name}`\"))?; Ok({name}({})) }}",
                items.join(", ")
            )
        }
        Shape::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::__get_field(__map, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "{{ let __map = __v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for `{name}`\"))?; Ok({name} {{ {} }}) }}",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = write!(unit_arms, "\"{vn}\" => Ok({name}::{vn}),");
                    }
                    Fields::Tuple(1) => {
                        let _ = write!(
                            tagged_arms,
                            "\"{vn}\" => ::serde::Deserialize::from_value(__content).map({name}::{vn}),"
                        );
                    }
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(__seq.get({i}).ok_or_else(|| ::serde::Error::custom(\"variant `{vn}` too short\"))?)?"
                                )
                            })
                            .collect();
                        let _ = write!(
                            tagged_arms,
                            "\"{vn}\" => {{ let __seq = __content.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for variant `{vn}`\"))?; Ok({name}::{vn}({})) }},",
                            items.join(", ")
                        );
                    }
                    Fields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::__get_field(__map, \"{f}\")?)?"
                                )
                            })
                            .collect();
                        let _ = write!(
                            tagged_arms,
                            "\"{vn}\" => {{ let __map = __content.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for variant `{vn}`\"))?; Ok({name}::{vn} {{ {} }}) }},",
                            inits.join(", ")
                        );
                    }
                }
            }
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => Err(::serde::Error::custom(format!(\"unknown variant `{{__other}}` for `{name}`\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __content) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\n\
                             __other => Err(::serde::Error::custom(format!(\"unknown variant `{{__other}}` for `{name}`\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(::serde::Error::custom(\"expected string or single-entry map for enum `{name}`\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
