//! Offline subset of the `serde_json` API used by this workspace:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`Error`],
//! over the vendored `serde::Value` data model.
//!
//! Output is deterministic: map keys render in `Value::Map` order,
//! floats use Rust's shortest round-trip `Display`, and non-finite
//! floats render as `null` (matching serde_json's lossy behaviour).

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (2-space indent).
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value of type `T` from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let mut buf = itoa_buffer();
            let _ = std::fmt::write(&mut buf, format_args!("{i}"));
            out.push_str(&buf);
        }
        Value::UInt(u) => {
            let mut buf = itoa_buffer();
            let _ = std::fmt::write(&mut buf, format_args!("{u}"));
            out.push_str(&buf);
        }
        Value::Float(f) => {
            if f.is_finite() {
                let mut buf = itoa_buffer();
                let _ = std::fmt::write(&mut buf, format_args!("{f}"));
                out.push_str(&buf);
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn itoa_buffer() -> String {
    String::with_capacity(24)
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::write(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // writer; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::Int(-3)),
            ("b".to_string(), Value::Float(1.5)),
            ("c".to_string(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("d".to_string(), Value::Str("x\n\"y\"".to_string())),
            ("e".to_string(), Value::UInt(u64::MAX)),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn floats_print_shortest_and_nonfinite_as_null() {
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let nan: f64 = from_str("null").unwrap();
        assert!(nan.is_nan());
    }
}
